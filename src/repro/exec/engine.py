"""The experiment execution engine: plan → (cache | workers) → assemble.

Every experiment decomposes into independent, deterministically-seeded
sweep points (:mod:`repro.core.experiments.points`). The engine

1. expands the requested experiments into one task per point,
2. serves finished points from the content-addressed
   :class:`~repro.exec.cache.ResultCache` (which doubles as a
   checkpoint: an interrupted sweep resumes from disk),
3. fans the remaining points out over a
   :class:`~repro.exec.pool.WorkerPool` (``--jobs N``) with a per-point
   timeout and crash recovery, or runs them inline when ``jobs == 1``,
4. reassembles payloads **in plan order** — never completion order — so
   parallel output is byte-identical to the serial run, and
5. merges per-point :class:`MetricsRegistry` snapshots back into the
   caller's registry, again in plan order.

Payloads are canonicalized through a JSON round-trip before assembly,
so a value has exactly one form whether it came from this process, a
worker, or a cache file (floats round-trip exactly; tuples become
lists, which :func:`~repro.core.experiments.points.assemble` restores).
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core.experiments.common import ExperimentConfig
from ..core.experiments.points import (
    assemble,
    experiment_plans,
    point_label,
)
from ..core.results import ExperimentResult, render_table
from ..sim.engine import events_total
from .cache import ResultCache
from .pool import DEFAULT_POINT_TIMEOUT_S, WorkerPool

__all__ = [
    "ExecutionError",
    "ExecutionReport",
    "PointRecord",
    "canonical_payload",
    "config_fields",
    "execute_experiments",
]


def config_fields(config: ExperimentConfig) -> dict[str, Any]:
    """The scalar config fields (drops the tracer/metrics/telemetry
    hooks; the telemetry *interval* is a scalar and stays in)."""
    return {
        f.name: getattr(config, f.name)
        for f in dataclasses.fields(config)
        if f.name not in ("tracer", "metrics", "telemetry")
    }


def _json_scalar(obj: Any):
    item = getattr(obj, "item", None)  # numpy scalars → Python scalars
    if callable(item):
        return item()
    raise TypeError(f"payload value {obj!r} is not JSON-serializable")


def canonical_payload(payload: Any) -> Any:
    """The unique JSON-round-tripped form of a point payload."""
    return json.loads(json.dumps(payload, default=_json_scalar))


@dataclass
class PointRecord:
    """One point's execution record (for reports and ``profile --points``)."""

    experiment_id: str
    label: str
    source: str  # "run" | "cache" | "failed"
    elapsed_s: float
    attempts: int = 1
    error: Optional[str] = None
    #: Simulated events dispatched while computing this point (0 when
    #: the stat predates the field, e.g. old cache entries).
    events: int = 0


@dataclass
class ExecutionReport:
    """What the engine did: per-point records plus run totals."""

    jobs: int
    points: list[PointRecord] = field(default_factory=list)
    wall_s: float = 0.0
    cache_hits: int = 0
    executed: int = 0
    failed: int = 0
    #: Merged time-resolved telemetry (experiment id → segment list in
    #: plan order), populated only when the config carries a sampling
    #: interval. Segments are canonical JSON values — deterministic at
    #: any ``--jobs`` because the merge below runs in plan order and the
    #: samplers never perturb the simulation.
    telemetry: dict[str, list] = field(default_factory=dict)

    @property
    def events(self) -> int:
        """Simulated events dispatched by the freshly-executed points."""
        return sum(r.events for r in self.points if r.source == "run")

    @property
    def events_per_s(self) -> float:
        """Aggregate simulation rate of the freshly-executed points."""
        busy = sum(r.elapsed_s for r in self.points if r.source == "run")
        return self.events / busy if busy > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / len(self.points) if self.points else 0.0

    def summary(self) -> str:
        total = len(self.points)
        parts = [
            f"{total} points: {self.executed} executed,"
            f" {self.cache_hits} cached",
        ]
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        parts.append(f"{self.wall_s:.1f}s wall, jobs={self.jobs}")
        return "[exec] " + ", ".join(parts)

    def table(self) -> str:
        """Per-point wall-clock table (slowest first)."""
        rows = [
            {
                "experiment": record.experiment_id,
                "point": record.label,
                "source": record.source,
                "attempts": record.attempts,
                "wall_s": record.elapsed_s,
                "events": record.events,
                "kev_per_s": (
                    record.events / record.elapsed_s / 1e3
                    if record.events and record.elapsed_s > 0 else 0.0
                ),
            }
            for record in sorted(
                self.points, key=lambda r: r.elapsed_s, reverse=True
            )
        ]
        return render_table(
            ["experiment", "point", "source", "attempts", "wall_s",
             "events", "kev_per_s"],
            rows,
            title=f"[exec] per-point wall clock ({self.summary()[7:]})",
        )


class ExecutionError(RuntimeError):
    """Raised when points still fail after their retry."""

    def __init__(self, failures: list[PointRecord], report: ExecutionReport):
        self.failures = failures
        self.report = report
        lines = [f"{len(failures)} experiment point(s) failed:"]
        for record in failures:
            first_line = (record.error or "").strip().splitlines()
            detail = first_line[-1] if first_line else "unknown error"
            lines.append(
                f"  {record.experiment_id}:{record.label} "
                f"({record.attempts} attempts): {detail}"
            )
        super().__init__("\n".join(lines))


@dataclass
class _Point:
    """Internal bookkeeping for one sweep point."""

    task_id: int
    experiment_id: str
    index: int
    params: dict
    label: str
    cache_key: Optional[str] = None
    hint_key: Optional[str] = None
    hint_s: Optional[float] = None


def _run_point_inline(plans, task: dict, config: ExperimentConfig) -> dict:
    """Execute one task in-process (the ``jobs == 1`` path)."""
    from ..obs.metrics import MetricsRegistry
    from ..obs.telemetry import TelemetryCollector

    started = time.perf_counter()
    events_before = events_total()
    try:
        run_config = config
        metrics = None
        if task["collect_metrics"]:
            metrics = MetricsRegistry()
            run_config = dataclasses.replace(config, metrics=metrics)
        telemetry = None
        if config.telemetry_interval_ns:
            # Fresh collector per point (never the caller's): segments
            # must stay separated by point for plan-order merging, same
            # as the worker path.
            telemetry = TelemetryCollector(config.telemetry_interval_ns)
            run_config = dataclasses.replace(run_config, telemetry=telemetry)
        payload = plans[task["experiment_id"]].point(run_config, task["params"])
        return {
            "task_id": task["task_id"],
            "ok": True,
            "payload": payload,
            "metrics": metrics.snapshot() if metrics is not None else None,
            "telemetry": telemetry.drain() if telemetry is not None else None,
            "elapsed_s": time.perf_counter() - started,
            "events": events_total() - events_before,
            "attempts": 1,
        }
    except Exception:
        import traceback

        return {
            "task_id": task["task_id"],
            "ok": False,
            "error": traceback.format_exc(),
            "attempts": 1,
        }


def execute_experiments(
    ids: Optional[list[str]] = None,
    config: Optional[ExperimentConfig] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    timeout_s: float = DEFAULT_POINT_TIMEOUT_S,
    progress: Optional[Callable[[str], None]] = None,
) -> tuple[dict[str, ExperimentResult], ExecutionReport]:
    """Run experiments through the point engine.

    Returns ``(results, report)`` where ``results`` maps experiment id →
    :class:`ExperimentResult` in request order. Raises
    :class:`ExecutionError` if any point still fails after its retry.
    """
    config = config or ExperimentConfig()
    if config.tracer is not None:
        raise ValueError(
            "command tracing records one in-process timeline and cannot be "
            "merged across workers; run traced experiments serially via "
            "the legacy path (repro run --trace forces it)"
        )
    if config.telemetry is not None:
        raise ValueError(
            "pass telemetry_interval_ns, not a live collector: the engine "
            "creates one collector per sweep point so segments merge in "
            "plan order"
        )
    # Ids resolve against the auxiliary-inclusive registry (so "sec4"
    # runs through the same machinery), but the default id list is the
    # main suite only.
    plans = experiment_plans(auxiliary=True)
    ids = list(ids) if ids else list(experiment_plans())
    unknown = [i for i in ids if i not in plans]
    if unknown:
        raise KeyError(
            f"unknown experiment(s) {unknown}; choose from {list(plans)}"
        )
    say = progress if progress is not None else (lambda message: None)
    collect_metrics = config.metrics is not None
    cfg_fields = config_fields(config)
    cache = ResultCache(cache_dir) if cache_dir else None

    started = time.monotonic()
    report = ExecutionReport(jobs=jobs)

    # 1. Expand every experiment into globally-indexed points.
    points: list[_Point] = []
    payloads: dict[str, list] = {}
    for exp_id in ids:
        params_list = [canonical_payload(p) for p in plans[exp_id].plan(config)]
        payloads[exp_id] = [None] * len(params_list)
        for index, params in enumerate(params_list):
            points.append(_Point(
                task_id=len(points), experiment_id=exp_id, index=index,
                params=params, label=point_label(params),
            ))

    # 2. Serve finished points from the cache.
    records: dict[int, PointRecord] = {}
    snapshots: dict[int, Optional[dict]] = {}
    segments: dict[int, Optional[list]] = {}
    misses: list[_Point] = []
    for point in points:
        if cache is not None:
            point.cache_key = cache.key(
                point.experiment_id, point.params, cfg_fields, collect_metrics
            )
            point.hint_key = cache.hint_key(
                point.experiment_id, point.params, cfg_fields
            )
            entry = cache.load(point.cache_key)
            if entry is not None:
                payloads[point.experiment_id][point.index] = entry["payload"]
                snapshots[point.task_id] = entry.get("metrics")
                segments[point.task_id] = entry.get("telemetry")
                records[point.task_id] = PointRecord(
                    point.experiment_id, point.label, "cache",
                    entry.get("elapsed_s", 0.0),
                    events=int(entry.get("events", 0)),
                )
                report.cache_hits += 1
                continue
            point.hint_s = cache.duration_hint(point.hint_key)
        misses.append(point)

    total = len(points)
    say(f"[exec] {total} points across {len(ids)} experiment(s): "
        f"{report.cache_hits} cached, {len(misses)} to run "
        f"(jobs={jobs})")

    # 3. Run the cache misses — fanned out or inline. Dispatch order is
    #    longest-first from the duration sidecar (LPT minimizes parallel
    #    makespan: a multi-second point started last would tail the whole
    #    sweep). Points with no hint sort first — an unknown duration
    #    might be the longest — and the sort is stable, so a cold cache
    #    degrades to plain plan order (FIFO). Results are assembled in
    #    plan order regardless, so scheduling never changes output.
    if cache is not None and any(p.hint_s is not None for p in misses):
        misses = sorted(
            misses,
            key=lambda p: -(p.hint_s if p.hint_s is not None else float("inf")),
        )
    tasks = [
        {
            "task_id": point.task_id,
            "experiment_id": point.experiment_id,
            "params": point.params,
            "config": cfg_fields,
            "collect_metrics": collect_metrics,
        }
        for point in misses
    ]
    by_id = {point.task_id: point for point in misses}
    done = [report.cache_hits]

    def on_reply(task: dict, reply: dict) -> None:
        point = by_id[task["task_id"]]
        done[0] += 1
        if reply["ok"]:
            say(f"[exec] {done[0]}/{total} {point.experiment_id}:"
                f"{point.label} ({reply['elapsed_s']:.2f}s)")
        else:
            say(f"[exec] {done[0]}/{total} {point.experiment_id}:"
                f"{point.label} FAILED after {reply['attempts']} attempt(s)")

    def on_progress(task: dict, message: dict) -> None:
        point = by_id[task["task_id"]]
        name = f"{point.experiment_id}:{point.label}"
        if message.get("progress") == "started":
            say(f"[exec] {name} started (pid {message.get('pid')})")
        else:
            elapsed = message.get("elapsed_s") or 0.0
            events = int(message.get("events") or 0)
            rate = events / elapsed / 1e3 if elapsed > 0 else 0.0
            say(f"[exec] {name} running: {events:,} events in "
                f"{elapsed:.0f}s ({rate:.0f} kev/s, pid {message.get('pid')})")

    if jobs > 1 and len(tasks) > 1:
        pool = WorkerPool(jobs, timeout_s=timeout_s)
        replies = pool.run(tasks, on_reply=on_reply, on_progress=on_progress)
    else:
        replies = {}
        for task in tasks:
            reply = _run_point_inline(plans, task, config)
            replies[task["task_id"]] = reply
            on_reply(task, reply)

    # 4. Fold replies back in plan order; persist fresh points.
    failures: list[PointRecord] = []
    for point in misses:
        reply = replies[point.task_id]
        if not reply["ok"]:
            record = PointRecord(
                point.experiment_id, point.label, "failed", 0.0,
                attempts=reply.get("attempts", 1), error=reply.get("error"),
            )
            records[point.task_id] = record
            failures.append(record)
            report.failed += 1
            continue
        payload = canonical_payload(reply["payload"])
        metrics_snapshot = reply.get("metrics")
        if metrics_snapshot is not None:
            metrics_snapshot = canonical_payload(metrics_snapshot)
        point_segments = reply.get("telemetry")
        if point_segments is not None:
            point_segments = canonical_payload(point_segments)
        payloads[point.experiment_id][point.index] = payload
        snapshots[point.task_id] = metrics_snapshot
        segments[point.task_id] = point_segments
        records[point.task_id] = PointRecord(
            point.experiment_id, point.label, "run", reply["elapsed_s"],
            attempts=reply.get("attempts", 1),
            events=int(reply.get("events", 0)),
        )
        report.executed += 1
        if cache is not None:
            cache.store(point.cache_key, {
                "experiment_id": point.experiment_id,
                "label": point.label,
                "payload": payload,
                "metrics": metrics_snapshot,
                "telemetry": point_segments,
                "elapsed_s": reply["elapsed_s"],
                "events": int(reply.get("events", 0)),
            })
            cache.record_duration(point.hint_key, reply["elapsed_s"])

    if cache is not None and report.executed:
        cache.flush_durations()
    report.points = [records[point.task_id] for point in points]
    report.wall_s = time.monotonic() - started
    if failures:
        raise ExecutionError(failures, report)

    # 5. Merge metrics snapshots in plan order, then assemble tables.
    if collect_metrics:
        for point in points:
            snapshot = snapshots.get(point.task_id)
            if snapshot:
                config.metrics.merge_snapshot(snapshot)
    if config.telemetry_interval_ns:
        # Same plan-order discipline as the metrics merge: the combined
        # timeseries is independent of worker scheduling and --jobs.
        for point in points:
            for segment in segments.get(point.task_id) or []:
                segment = dict(segment)
                segment["experiment_id"] = point.experiment_id
                segment["point"] = point.label
                report.telemetry.setdefault(
                    point.experiment_id, []
                ).append(segment)
    results = {
        exp_id: assemble(plans[exp_id], config, payloads[exp_id])
        for exp_id in ids
    }
    say(report.summary())
    return results, report
