"""Event-driven NAND flash array: dies and channel buses as resources.

The backend is the *shared physical substrate* under both the ZNS device
model and the conventional-SSD model. Each die is a single-server
resource (one NAND operation at a time); each channel is a single-server
bus with a finite transfer bandwidth. Contention at these resources is
what produces the interference effects the paper measures: user reads
queueing behind GC programs (§III-F), and saturation of the aggregate
program bandwidth (§III-D).

The backend is addressed at die granularity — logical-to-physical page
bookkeeping belongs to the FTLs layered above it — which keeps the hot
event loop small while preserving every queueing effect.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer, resolve_tracer
from ..sim.engine import Simulator
from ..sim.resources import Resource, ServiceLine
from .geometry import MIB, FlashGeometry
from .nand import NandTiming

__all__ = ["FlashBackend", "FlashCounters"]


class FlashCounters:
    """Operation counters for a backend (reads/programs/erases)."""

    __slots__ = ("pages_read", "pages_programmed", "blocks_erased")

    def __init__(self) -> None:
        self.pages_read = 0
        self.pages_programmed = 0
        self.blocks_erased = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "pages_read": self.pages_read,
            "pages_programmed": self.pages_programmed,
            "blocks_erased": self.blocks_erased,
        }


class FlashBackend:
    """The NAND array: per-die execution units and per-channel buses."""

    def __init__(
        self,
        sim: Simulator,
        geometry: FlashGeometry,
        timing: NandTiming,
        channel_bandwidth: int = 800 * MIB,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        faults=None,
        fifo_queues: bool = False,
    ):
        if channel_bandwidth <= 0:
            raise ValueError(f"channel bandwidth must be positive, got {channel_bandwidth}")
        self.sim = sim
        self.geometry = geometry
        self.timing = timing
        self.channel_bandwidth = channel_bandwidth
        self.tracer = resolve_tracer(tracer)
        self.metrics = metrics
        #: Optional FaultInjector (DESIGN.md §12). ``None`` — the default
        #: — must add zero events and zero RNG draws to every operation.
        self.faults = faults if faults is not None and faults.plan.media_enabled else None
        # ``fifo_queues``: the caller guarantees every die/bus request
        # uses one priority (the ZNS model — no GC), so the priority
        # heaps degenerate to FIFO and the cheaper ServiceLine is
        # grant-order-identical (DESIGN.md §15). The conventional model
        # keeps Resources: its GC runs at PRIO_GC_URGENT.
        queue_cls = ServiceLine if fifo_queues else (
            lambda s, name: Resource(s, capacity=1, name=name)
        )
        self.dies = [
            queue_cls(sim, name=f"die{i}") for i in range(geometry.total_dies)
        ]
        self.buses = [
            queue_cls(sim, name=f"bus{i}") for i in range(geometry.channels)
        ]
        self.counters = FlashCounters()
        self._die_busy_ns = [0] * geometry.total_dies
        #: Hot-path lookup tables: the bus serving each die, and memoized
        #: bus-transfer times by size (request sizes repeat endlessly, so
        #: the division/round in transfer_ns runs once per distinct size).
        self._bus_of_die = [
            self.buses[geometry.channel_of_die(i)]
            for i in range(geometry.total_dies)
        ]
        self._page_transfer_ns = self.transfer_ns(geometry.page_size)
        self._transfer_cache = {geometry.page_size: self._page_transfer_ns}
        if metrics is not None:
            self._op_counters = {
                "read": metrics.counter("nand.pages_read"),
                "program": metrics.counter("nand.pages_programmed"),
                "erase": metrics.counter("nand.blocks_erased"),
            }
            self._die_busy_gauges = [
                metrics.gauge(f"nand.die{i}.busy_ns")
                for i in range(geometry.total_dies)
            ]
        else:
            self._op_counters = None
            self._die_busy_gauges = None

    # -- helpers -----------------------------------------------------------
    def transfer_ns(self, nbytes: int) -> int:
        """Time to move ``nbytes`` across one channel bus."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return round(nbytes * 1e9 / self.channel_bandwidth)

    def die_queue_depth(self, die_index: int) -> int:
        """Operations queued or executing at a die (congestion signal)."""
        die = self.dies[die_index]
        return die.in_use + die.queue_length

    def die_busy_ns(self, die_index: int) -> int:
        """Cumulative busy time of a die (for utilization accounting)."""
        return self._die_busy_ns[die_index]

    def aggregate_program_bandwidth(self) -> float:
        """Raw program bandwidth ceiling in bytes/second."""
        return self.timing.program_bandwidth(self.geometry)

    def _publish(self, op: str, die_index: int) -> None:
        self._op_counters[op].inc()
        self._die_busy_gauges[die_index].set(self._die_busy_ns[die_index])

    # -- physical operations (generator processes) ---------------------------
    def read_page(self, die_index: int, priority: int = 0,
                  transfer_bytes: int | None = None,
                  cid: int = 0, label: str = "read",
                  fault_out: list | None = None,
                  wear=None) -> Generator:
        """NAND page read: sense on the die, then stream out on the bus.

        ``transfer_bytes`` limits the bus transfer to the requested slice
        of the page (a 4 KiB read senses a whole page but only moves
        4 KiB over the channel). ``cid``/``label`` tag the trace spans
        (e.g. the GC relocation path labels its reads ``gc``).

        With faults armed, a read-disturbed page re-senses through the
        firmware retry ladder (extra die-held latency per retry); if the
        ladder exhausts, the die index is appended to ``fault_out`` so
        the caller can fail the command with ``MEDIA_UNRECOVERED_READ``.
        ``wear`` is the touched unit's :class:`~repro.faults.wear.UnitWear`
        (zone or block odometer): it selects the wear-dependent disturb
        probability and accumulates read exposure (DESIGN.md §17).
        """
        die = self.dies[die_index]
        traced = self.tracer.enabled
        queued_at = self.sim.now if traced else 0
        req = die.request(priority)
        yield req
        # The die is held exclusively for exactly ``read_ns``, so busy
        # accounting can use the constant instead of clock reads (the
        # timestamps below are only needed for trace spans).
        start = self.sim.now if traced else 0
        yield self.sim.timeout(self.timing.read_ns)
        busy_ns = self.timing.read_ns
        if self.faults is not None:
            retries, uncorrectable = self.faults.read_outcome(wear)
            if retries:
                step = self.faults.plan.read_retry_step_ns or self.timing.read_ns
                yield self.sim.timeout(retries * step)
                busy_ns += retries * step
            if uncorrectable and fault_out is not None:
                fault_out.append(die_index)
        self._die_busy_ns[die_index] += busy_ns
        if self._op_counters is not None:
            self._publish("read", die_index)
        die.release(req)
        bus = self._bus_of_die[die_index]
        breq = bus.request(priority)
        yield breq
        nbytes = self.geometry.page_size if transfer_bytes is None else transfer_bytes
        transfer = self._transfer_cache.get(nbytes)
        if transfer is None:
            transfer = self._transfer_cache[nbytes] = self.transfer_ns(nbytes)
        yield self.sim.timeout(transfer)
        bus.release(breq)
        self.counters.pages_read += 1
        if traced:
            if start > queued_at:
                self.tracer.span("queue", f"{label}.die_wait", queued_at, start,
                                 track=f"die{die_index}", cid=cid)
            self.tracer.span("nand", f"{label}.page", start, self.sim.now,
                             track=f"die{die_index}", cid=cid, die=die_index)

    def read_page_fast(self, die_index: int, transfer_bytes: int) -> Generator:
        """Probe-free :meth:`read_page`: same events in the same order,
        with every tracer/fault/metrics conditional resolved at
        construction time instead of per operation.

        Valid only when the device selected the fast dispatch table
        (tracer disabled, no observability, no faults — see
        ``ZnsDevice._exec_table``); the instrumented variant remains the
        one and only implementation whenever any probe could fire.
        """
        die = self.dies[die_index]
        req = die.request()
        yield req
        yield self.sim.timeout(self.timing.read_ns)
        self._die_busy_ns[die_index] += self.timing.read_ns
        die.release(req)
        bus = self._bus_of_die[die_index]
        breq = bus.request()
        yield breq
        transfer = self._transfer_cache.get(transfer_bytes)
        if transfer is None:
            transfer = self._transfer_cache[transfer_bytes] = self.transfer_ns(
                transfer_bytes
            )
        yield self.sim.timeout(transfer)
        bus.release(breq)
        self.counters.pages_read += 1

    def program_page_fast(self, die_index: int) -> Generator:
        """Probe-free :meth:`program_page` (see :meth:`read_page_fast`).

        No cancel token (fast dispatch requires faults off, and power
        cuts are a fault) and no failure return — callers on the fast
        table ignore it.
        """
        bus = self._bus_of_die[die_index]
        breq = bus.request()
        yield breq
        yield self.sim.timeout(self._page_transfer_ns)
        bus.release(breq)
        die = self.dies[die_index]
        req = die.request()
        yield req
        yield self.sim.timeout(self.timing.program_ns)
        self._die_busy_ns[die_index] += self.timing.program_ns
        die.release(req)
        self.counters.pages_programmed += 1

    def program_page(self, die_index: int, priority: int = 0,
                     cid: int = 0, label: str = "program",
                     cancel: list | None = None,
                     wear=None) -> Generator:
        """NAND page program: stream in on the bus, then program the die.

        Returns the number of injected program failures absorbed by the
        firmware (each costs one extra ``program_ns`` on the held die —
        the remap re-programs from the die register, no bus traffic), or
        ``-1`` if ``cancel`` (a power-loss token ``[cancelled, started]``)
        was set before the program began: the page never reached the
        media and the caller must not drain the write buffer for it.
        """
        traced = self.tracer.enabled
        if cancel is not None and cancel[0]:
            return -1
        started = self.sim.now if traced else 0
        bus = self._bus_of_die[die_index]
        breq = bus.request(priority)
        yield breq
        yield self.sim.timeout(self._page_transfer_ns)
        bus.release(breq)
        die = self.dies[die_index]
        req = die.request(priority)
        yield req
        if cancel is not None:
            if cancel[0]:
                die.release(req)
                return -1
            # Commit point: once programming starts, PLP capacitor energy
            # carries the operation to completion on power loss.
            cancel[1] = True
        yield self.sim.timeout(self.timing.program_ns)
        busy_ns = self.timing.program_ns
        failures = 0
        if self.faults is not None:
            failures = self.faults.program_outcome(wear)
            if failures:
                extra = failures * self.timing.program_ns
                yield self.sim.timeout(extra)
                busy_ns += extra
        self._die_busy_ns[die_index] += busy_ns
        if self._op_counters is not None:
            self._publish("program", die_index)
        die.release(req)
        self.counters.pages_programmed += 1
        if traced:
            self.tracer.span("nand", f"{label}.page", started, self.sim.now,
                             track=f"die{die_index}", cid=cid, die=die_index)
        return failures

    def erase_block(self, die_index: int, priority: int = 0,
                    cid: int = 0, label: str = "erase",
                    wear=None) -> Generator:
        """NAND block erase: occupies the die for the (long) erase time.

        Returns ``True`` if the erase exhausted its retry budget and the
        block went bad. A *successful* erase bumps the unit's wear
        odometer (erase count up, read exposure reset).
        """
        die = self.dies[die_index]
        traced = self.tracer.enabled
        req = die.request(priority)
        yield req
        start = self.sim.now if traced else 0
        yield self.sim.timeout(self.timing.erase_ns)
        busy_ns = self.timing.erase_ns
        bad_block = False
        if self.faults is not None:
            retries, bad_block = self.faults.erase_outcome(wear)
            if retries:
                extra = retries * self.timing.erase_ns
                yield self.sim.timeout(extra)
                busy_ns += extra
            if not bad_block and wear is not None:
                self.faults.note_erase(wear)
        self._die_busy_ns[die_index] += busy_ns
        if self._op_counters is not None:
            self._publish("erase", die_index)
        die.release(req)
        self.counters.blocks_erased += 1
        if traced:
            self.tracer.span("nand", f"{label}.block", start, self.sim.now,
                             track=f"die{die_index}", cid=cid, die=die_index)
        return bad_block
