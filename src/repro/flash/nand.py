"""NAND timing model: page read, page program, and block erase latencies.

These are the per-die service times of the three physical flash
operations. Together with :class:`repro.flash.geometry.FlashGeometry` they
fix the device's raw performance envelope:

* aggregate program bandwidth = total_dies × page_size / program_ns,
* aggregate read rate = total_dies / read_ns,
* erase work is rare and batched (GC / implicit reclamation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.engine import us

__all__ = ["NandTiming"]


@dataclass(frozen=True)
class NandTiming:
    """Per-die NAND operation latencies, in nanoseconds."""

    read_ns: int = us(65)
    program_ns: int = us(450)
    erase_ns: int = us(3_500)

    def __post_init__(self) -> None:
        for field in ("read_ns", "program_ns", "erase_ns"):
            value = getattr(self, field)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"{field} must be a positive integer, got {value!r}")

    def program_bandwidth(self, geometry) -> float:
        """Aggregate program bandwidth in bytes/second for a geometry."""
        return geometry.total_dies * geometry.page_size * 1e9 / self.program_ns

    def read_rate(self, geometry) -> float:
        """Aggregate page-read operations per second for a geometry."""
        return geometry.total_dies * 1e9 / self.read_ns
