"""Physical geometry of a NAND flash array.

The geometry describes the parallel structure of the device backend:
channels (independent buses), dies per channel (independent command
execution units), planes per die (parallel program targets inside a die),
and the block/page hierarchy that erase and program operations act on.

A concrete geometry together with :class:`repro.flash.nand.NandTiming`
determines the device's raw bandwidth ceilings — e.g. aggregate program
bandwidth = ``total_dies * page_size / program_latency`` — which is how
the ZN540 profile lands on the paper's ~1,155 MiB/s write limit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KIB", "MIB", "GIB", "FlashGeometry"]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass(frozen=True)
class FlashGeometry:
    """Immutable description of a flash array's parallel structure."""

    channels: int = 8
    dies_per_channel: int = 4
    planes_per_die: int = 2
    blocks_per_plane: int = 512
    pages_per_block: int = 512
    page_size: int = 16 * KIB

    def __post_init__(self) -> None:
        for field in (
            "channels",
            "dies_per_channel",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
        ):
            value = getattr(self, field)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"{field} must be a positive integer, got {value!r}")
        if self.page_size % 512 != 0:
            raise ValueError(f"page_size must be a multiple of 512, got {self.page_size}")

    # -- derived sizes -----------------------------------------------------
    @property
    def total_dies(self) -> int:
        """Independent execution units across the whole device."""
        return self.channels * self.dies_per_channel

    @property
    def total_planes(self) -> int:
        return self.total_dies * self.planes_per_die

    @property
    def block_bytes(self) -> int:
        """Bytes per erase block."""
        return self.pages_per_block * self.page_size

    @property
    def plane_bytes(self) -> int:
        return self.blocks_per_plane * self.block_bytes

    @property
    def die_bytes(self) -> int:
        return self.planes_per_die * self.plane_bytes

    @property
    def capacity_bytes(self) -> int:
        """Raw capacity of the whole array."""
        return self.total_dies * self.die_bytes

    @property
    def total_blocks(self) -> int:
        return self.total_planes * self.blocks_per_plane

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block

    # -- indexing ------------------------------------------------------------
    def die_index(self, channel: int, die: int) -> int:
        """Flatten (channel, die-in-channel) to a global die index."""
        if not 0 <= channel < self.channels:
            raise ValueError(f"channel {channel} out of range [0, {self.channels})")
        if not 0 <= die < self.dies_per_channel:
            raise ValueError(f"die {die} out of range [0, {self.dies_per_channel})")
        return channel * self.dies_per_channel + die

    def channel_of_die(self, die_index: int) -> int:
        """Channel that a global die index hangs off."""
        if not 0 <= die_index < self.total_dies:
            raise ValueError(f"die index {die_index} out of range [0, {self.total_dies})")
        return die_index // self.dies_per_channel

    def pages_needed(self, nbytes: int) -> int:
        """Number of flash pages needed to hold ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return -(-nbytes // self.page_size)
