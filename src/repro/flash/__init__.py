"""NAND flash substrate: geometry, timing, and the event-driven array."""

from .backend import FlashBackend, FlashCounters
from .geometry import GIB, KIB, MIB, FlashGeometry
from .nand import NandTiming

__all__ = [
    "FlashBackend",
    "FlashCounters",
    "FlashGeometry",
    "GIB",
    "KIB",
    "MIB",
    "NandTiming",
]
