"""zonefs-like file view of a zoned namespace (paper refs [53], [75]).

Linux *zonefs* exposes each zone as a single append-only file: writing
appends at the file's end, reading is ordinary, truncating to zero
resets the zone, and truncating to the zone capacity finishes it. It is
the thinnest possible filesystem over ZNS — no block mapping, no
journal — and therefore a faithful consumer of exactly the operations
this characterization measures.

This module reproduces those semantics over the simulated device, with
the same synchronous ergonomics as :class:`repro.zns.zbd`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hostif.commands import Command, Completion, Opcode, ZoneAction
from ..hostif.status import StatusError
from ..sim.engine import Event
from ..zns.device import ZnsDevice
from ..zns.spec import ZoneState

__all__ = ["ZoneFile", "ZoneFs"]


@dataclass
class ZoneFile:
    """One zone-backed file (a ``/seq/N`` entry in Linux zonefs)."""

    fs: "ZoneFs"
    zone_index: int

    @property
    def name(self) -> str:
        return f"seq/{self.zone_index}"

    @property
    def size(self) -> int:
        """Current file size in bytes (the zone's write-pointer offset)."""
        zone = self.fs.device.zones.zones[self.zone_index]
        return zone.occupancy_lbas * self.fs._block

    @property
    def max_size(self) -> int:
        return self.fs.device.zones.zones[self.zone_index].cap_lbas * self.fs._block

    # -- file operations --------------------------------------------------
    def append(self, nbytes: int) -> Completion:
        """Append ``nbytes`` at the end of the file (zone append)."""
        return self.fs._sync(self.append_async(nbytes))

    def append_async(self, nbytes: int) -> Event:
        """Async append: returns the completion event, for use *inside*
        an already-running simulation (a tenant workload process)."""
        nlb = self.fs._nlb(nbytes)
        zone = self.fs.device.zones.zones[self.zone_index]
        return self.fs.submit(Command(Opcode.APPEND, slba=zone.zslba, nlb=nlb))

    def pread(self, offset: int, nbytes: int) -> Completion:
        """Read within the written extent of the file."""
        return self.fs._sync(self.pread_async(offset, nbytes))

    def pread_async(self, offset: int, nbytes: int) -> Event:
        """Async read within the written extent (see :meth:`append_async`)."""
        if offset < 0 or offset % self.fs._block:
            raise ValueError(f"offset {offset} must be block-aligned and >= 0")
        if offset + nbytes > self.size:
            raise ValueError(
                f"read [{offset}, {offset + nbytes}) beyond EOF at {self.size}"
            )
        zone = self.fs.device.zones.zones[self.zone_index]
        slba = zone.zslba + offset // self.fs._block
        return self.fs.submit(
            Command(Opcode.READ, slba=slba, nlb=self.fs._nlb(nbytes)))

    def truncate(self, size: int) -> None:
        """zonefs truncation: 0 resets the zone; max_size finishes it."""
        self.fs._sync(self.truncate_async(size))

    def truncate_async(self, size: int) -> Event:
        """Async truncation (see :meth:`append_async`)."""
        zone = self.fs.device.zones.zones[self.zone_index]
        if size == 0:
            return self.fs.submit(Command(Opcode.ZONE_MGMT, slba=zone.zslba,
                                          action=ZoneAction.RESET))
        if size == self.max_size:
            return self.fs.submit(Command(Opcode.ZONE_MGMT, slba=zone.zslba,
                                          action=ZoneAction.FINISH))
        raise ValueError(
            "zonefs only supports truncation to 0 (reset) or to the "
            f"zone capacity {self.max_size} (finish); got {size}"
        )


class ZoneFs:
    """The mount: one append-only file per sequential zone."""

    def __init__(self, device: ZnsDevice, stack=None):
        self.device = device
        self.sim = device.sim
        if stack is None:
            # Every mount pays host-stack overhead: a bare device target
            # here used to silently skip submit/complete costs, skewing
            # any latency measured through the filesystem path. Anything
            # with ``submit(Command) -> Event`` works — a StorageStack,
            # a HostSession, or a Tenant (which also stamps its label).
            from ..stacks.spdk import SpdkStack

            stack = SpdkStack(device)
        self._target = stack
        self._block = device.namespace.block_size
        self._files = [ZoneFile(self, i) for i in range(device.zones.num_zones)]

    def __len__(self) -> int:
        return len(self._files)

    def file(self, zone_index: int) -> ZoneFile:
        if not 0 <= zone_index < len(self._files):
            raise ValueError(f"no file seq/{zone_index}")
        return self._files[zone_index]

    def files(self) -> list[ZoneFile]:
        return list(self._files)

    def statfs(self) -> dict:
        """Aggregate usage, like ``df`` on a zonefs mount."""
        used = sum(f.size for f in self._files)
        total = sum(f.max_size for f in self._files)
        open_files = sum(
            1 for z in self.device.zones.zones
            if z.state in (ZoneState.IMPLICIT_OPEN, ZoneState.EXPLICIT_OPEN)
        )
        return {"files": len(self._files), "used": used, "total": total,
                "open_files": open_files}

    # -- internals ----------------------------------------------------------
    def _nlb(self, nbytes: int) -> int:
        if nbytes <= 0 or nbytes % self._block:
            raise ValueError(
                f"length {nbytes} must be a positive multiple of {self._block}"
            )
        return nbytes // self._block

    def submit(self, command: Command) -> Event:
        """Issue a command through the mount's host session."""
        return self._target.submit(command)

    def _sync(self, event: Event) -> Completion:
        completion = self.sim.run(until=event)
        if not completion.ok:
            raise StatusError(completion.status,
                              completion.command.opcode.value)
        return completion
