"""RAID-0 over zones: a striped "superzone" (ZRAID / RAIZN-lite, ref [79]).

RAIZN builds redundant arrays from zones; the performance-relevant core
is the striped write path — exactly the paper's Recommendation #2
trade-off made reusable: a logical append is chunked across ``width``
member zones (inter-zone parallelism for writes), while the logical
read path fans out to the members holding the stripe units.

The array keeps a logical→member extent map (appends may interleave, so
the device-assigned addresses must be recorded), exposes a combined
capacity, and reclaims all members together with a superzone reset.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from ..hostif.commands import Command, Completion, Opcode, ZoneAction
from ..hostif.status import StatusError
from ..zns.device import ZnsDevice

__all__ = ["StripedZoneArray"]


@dataclass(frozen=True)
class _Extent:
    """One stripe unit's location: logical offset → member zone LBA."""

    logical_offset: int  # bytes
    length: int          # bytes
    member: int          # index into the member-zone list
    lba: int             # device LBA of the chunk start


class StripedZoneArray:
    """A RAID-0 "superzone" built from ``width`` member zones."""

    def __init__(self, device: ZnsDevice, member_zones: list[int],
                 stripe_unit: int = 64 * 1024, stack=None):
        if len(member_zones) < 2:
            raise ValueError("an array needs at least two member zones")
        if len(set(member_zones)) != len(member_zones):
            raise ValueError("duplicate member zones")
        block = device.namespace.block_size
        if stripe_unit <= 0 or stripe_unit % block:
            raise ValueError(
                f"stripe unit must be a positive multiple of the {block} B block"
            )
        self.device = device
        self.sim = device.sim
        if stack is None:
            # Same contract as ZoneFs: the array always submits through
            # a host session so striped I/O pays stack overhead like any
            # other path; a bare device target here used to skip it.
            from ..stacks.spdk import SpdkStack

            stack = SpdkStack(device)
        self._target = stack
        self.member_zones = list(member_zones)
        self.stripe_unit = stripe_unit
        self._block = block
        self._extents: list[_Extent] = []
        self._starts: list[int] = []  # logical offsets, for bisect
        self._written = 0
        self._next_member = 0

    # -- geometry -----------------------------------------------------------
    @property
    def width(self) -> int:
        return len(self.member_zones)

    @property
    def capacity(self) -> int:
        """Combined writable capacity in bytes."""
        return sum(
            self.device.zones.zones[z].cap_lbas * self._block
            for z in self.member_zones
        )

    @property
    def written(self) -> int:
        return self._written

    def submit(self, command: Command):
        """Issue a command through the array's host session."""
        return self._target.submit(command)

    # -- write path -----------------------------------------------------------
    def append(self, nbytes: int) -> tuple[int, list[Completion]]:
        """Striped logical append; returns (logical offset, completions).

        The request is split into stripe units issued as *concurrent*
        appends to consecutive member zones — the inter-zone write
        parallelism of §III-D — then recorded in the extent map at the
        device-assigned addresses.
        """
        if nbytes <= 0 or nbytes % self._block:
            raise ValueError(
                f"length {nbytes} must be a positive multiple of {self._block}"
            )
        if self._written + nbytes > self.capacity:
            raise ValueError(
                f"append of {nbytes} B exceeds the array capacity "
                f"({self._written}/{self.capacity} B written)"
            )
        chunks: list[tuple[int, int]] = []  # (member, length)
        remaining = nbytes
        while remaining > 0:
            take = min(self.stripe_unit, remaining)
            chunks.append((self._next_member, take))
            self._next_member = (self._next_member + 1) % self.width
            remaining -= take
        events = []
        for member, length in chunks:
            zone = self.device.zones.zones[self.member_zones[member]]
            events.append(self._target.submit(Command(
                Opcode.APPEND, slba=zone.zslba, nlb=length // self._block)))
        self.sim.run(until=self.sim.all_of(events))
        logical_start = self._written
        completions = []
        offset = logical_start
        for (member, length), event in zip(chunks, events):
            completion = event.value
            if not completion.ok:
                raise StatusError(completion.status, f"member {member}")
            self._starts.append(offset)
            self._extents.append(_Extent(offset, length, member,
                                         completion.assigned_lba))
            completions.append(completion)
            offset += length
        self._written = offset
        return logical_start, completions

    # -- read path ---------------------------------------------------------------
    def pread(self, offset: int, nbytes: int) -> list[Completion]:
        """Read a logical range, fanning out to the member extents."""
        if offset < 0 or offset % self._block or nbytes <= 0 or nbytes % self._block:
            raise ValueError("offset/length must be block-aligned and positive")
        if offset + nbytes > self._written:
            raise ValueError(
                f"read [{offset}, {offset + nbytes}) beyond the written "
                f"extent at {self._written}"
            )
        events = []
        cursor, end = offset, offset + nbytes
        while cursor < end:
            extent = self._extent_at(cursor)
            within = cursor - extent.logical_offset
            take = min(end - cursor, extent.length - within)
            events.append(self._target.submit(Command(
                Opcode.READ,
                slba=extent.lba + within // self._block,
                nlb=take // self._block,
            )))
            cursor += take
        self.sim.run(until=self.sim.all_of(events))
        completions = [e.value for e in events]
        for completion in completions:
            if not completion.ok:
                raise StatusError(completion.status, "striped read")
        return completions

    def _extent_at(self, offset: int) -> _Extent:
        index = bisect_right(self._starts, offset) - 1
        extent = self._extents[index]
        assert extent.logical_offset <= offset < extent.logical_offset + extent.length
        return extent

    # -- reclamation ---------------------------------------------------------------
    def reset(self) -> None:
        """Superzone reset: reset every member, clear the extent map."""
        for zone_index in self.member_zones:
            zone = self.device.zones.zones[zone_index]
            completion = self.sim.run(until=self._target.submit(Command(
                Opcode.ZONE_MGMT, slba=zone.zslba, action=ZoneAction.RESET)))
            if not completion.ok:
                raise StatusError(completion.status, f"reset zone {zone_index}")
        self._extents.clear()
        self._starts.clear()
        self._written = 0
        self._next_member = 0
