"""Application substrates over the simulated ZNS device.

The layers the paper's §II-C/§V survey as ZNS consumers, reproduced at
their performance-relevant core: a zonefs-like per-zone file view, a
RAID-0 striped zone array (RAIZN-lite), and an LSM-tree serving
workload (flush + compaction + point reads) that runs inside a tenant
context for multi-tenant interference experiments. The log-structured
KV store lives in ``examples/zns_log_store.py`` as a runnable
walkthrough.
"""

from .lsm import LsmConfig, LsmWorkload
from .zonefs import ZoneFile, ZoneFs
from .zraid import StripedZoneArray

__all__ = ["LsmConfig", "LsmWorkload", "StripedZoneArray", "ZoneFile",
           "ZoneFs"]
