"""Application substrates over the simulated ZNS device.

The layers the paper's §II-C/§V survey as ZNS consumers, reproduced at
their performance-relevant core: a zonefs-like per-zone file view and a
RAID-0 striped zone array (RAIZN-lite). The log-structured KV store
lives in ``examples/zns_log_store.py`` as a runnable walkthrough.
"""

from .zonefs import ZoneFile, ZoneFs
from .zraid import StripedZoneArray

__all__ = ["StripedZoneArray", "ZoneFile", "ZoneFs"]
