"""An LSM-tree serving workload over a zone partition (paper §II-C).

The production scenario behind the paper's interference observations
(#10-#13) is a log-structured KV store serving point reads while its
own maintenance — memtable flushes and background compaction — writes
sequentially and resets reclaimed zones. This module reproduces that
shape at its performance-relevant core, composed from the zonefs seed:

* a **flusher** appends fixed-size SSTs into the current open zone
  (sequential zone appends, chunked like a real write path), sealing
  the zone with a FINISH when it is full;
* a **compactor** picks the oldest sealed zone, reads its live SSTs
  back, appends the merged output (a configurable survivor fraction)
  into a fresh zone, and RESETs the source — the write-amplification /
  reclamation loop every LSM on ZNS runs;
* **readers** issue random point reads against the live SST catalog —
  the serving path whose p99 the tenant's SLO is measured against.

Everything runs *within* a tenant context (:mod:`repro.tenancy`): all
commands carry the tenant's label, read completions feed the tenant's
latency/SLO accounting, failures get per-zone attribution, and every
random draw comes from the tenant's named RNG sub-streams — so N
co-located LSM tenants are bit-reproducible at any ``--jobs`` and
adding one tenant never perturbs another's draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from ..hostif.commands import Command, Opcode, ZoneAction
from ..sim.engine import Event, us

if TYPE_CHECKING:  # import cycle: tenancy pulls in the workload layer
    from ..tenancy.session import Tenant

__all__ = ["LsmConfig", "LsmWorkload"]

KIB = 1024


@dataclass(frozen=True)
class LsmConfig:
    """Shape of one LSM serving tenant's workload."""

    #: One SST's size in bytes (flush granularity).
    sst_bytes: int = 256 * KIB
    #: Chunk size for SST appends — the write path issues the SST as
    #: consecutive appends of this size, like a real fs write path.
    append_chunk: int = 64 * KIB
    #: Simulated pause between memtable flushes.
    flush_interval_ns: int = us(150)
    #: Point-read request size.
    read_bytes: int = 4 * KIB
    #: Number of concurrent reader processes (serving threads).
    readers: int = 2
    #: Mean think time between one reader's point reads.
    read_interval_ns: int = us(40)
    #: Fraction of a compacted zone's bytes that survive the merge.
    survivor_fraction: float = 0.5
    #: Start compacting once this many zones are sealed.
    compact_trigger: int = 2


@dataclass
class _Sst:
    """One live SST: where it lives and whether it is still readable."""

    zone: int
    offset: int   # bytes from the zone start
    length: int   # bytes
    live: bool = True


class LsmWorkload:
    """Flush + compact + serve over a tenant's zone partition.

    ``start()`` launches the flusher, the compactor, and ``readers``
    reader processes inside the shared simulation and returns an event
    that fires when all of them have observed ``until_ns``.
    """

    def __init__(self, tenant: "Tenant", until_ns: int,
                 config: Optional[LsmConfig] = None):
        if tenant.zones is None or len(tenant.zones) < 3:
            raise ValueError(
                "an LSM tenant needs a partition of >= 3 zones "
                "(open + sealed + compaction headroom)"
            )
        self.tenant = tenant
        self.device = tenant.device
        self.sim = tenant.sim
        self.until_ns = until_ns
        self.config = config or LsmConfig()
        block = self.device.namespace.block_size
        for name in ("sst_bytes", "append_chunk", "read_bytes"):
            value = getattr(self.config, name)
            if value <= 0 or value % block:
                raise ValueError(
                    f"{name}={value} must be a positive multiple of the "
                    f"{block} B block"
                )
        self._block = block
        zone_cap = self.device.zones.zones[tenant.zones[0]].cap_lbas * block
        self.ssts_per_zone = max(1, zone_cap // self.config.sst_bytes)
        # -- mutable store state (single-threaded inside the sim) ---------
        self._free: list[int] = list(tenant.zones)
        self._sealed: list[int] = []   # oldest first
        self._open: Optional[int] = None
        self._open_ssts = 0
        self._catalog: list[_Sst] = []
        # -- workload counters (beyond the tenant's accounting) -----------
        self.flushes = 0
        self.compactions = 0
        self.reads = 0
        self.stale_reads = 0

    # -- lifecycle --------------------------------------------------------
    def start(self) -> Event:
        processes = [self.sim.process(self._flusher()),
                     self.sim.process(self._compactor())]
        for reader in range(self.config.readers):
            processes.append(self.sim.process(self._reader(reader)))
        return self.sim.all_of(processes)

    # -- write path: memtable flushes ------------------------------------
    def _zslba(self, zone_id: int) -> int:
        return self.device.zones.zones[zone_id].zslba

    def _take_zone(self) -> Optional[int]:
        if self._open is not None:
            return self._open
        if not self._free:
            return None
        self._open = self._free.pop(0)
        self._open_ssts = 0
        return self._open

    def _flusher(self) -> Generator:
        tenant = self.tenant
        config = self.config
        rng = tenant.rng("lsm-flush")
        while self.sim.now < self.until_ns:
            # Flush cadence with a little deterministic jitter so two
            # tenants' flushers do not phase-lock against the device.
            jitter = int(rng.integers(0, config.flush_interval_ns // 4 + 1))
            yield self.sim.timeout(config.flush_interval_ns + jitter)
            zone_id = self._take_zone()
            if zone_id is None:
                continue  # all zones sealed; wait for compaction
            offset = self.device.zones.zones[zone_id].occupancy_lbas
            offset *= self._block
            failed = False
            for chunk_start in range(0, config.sst_bytes, config.append_chunk):
                chunk = min(config.append_chunk,
                            config.sst_bytes - chunk_start)
                completion = yield tenant.submit(Command(
                    Opcode.APPEND, slba=self._zslba(zone_id),
                    nlb=chunk // self._block))
                if not completion.ok:
                    tenant.record_error(completion.status,
                                        self._zslba(zone_id))
                    failed = True
                    break
            if failed:
                continue
            self._catalog.append(_Sst(zone_id, offset, config.sst_bytes))
            self.flushes += 1
            self._open_ssts += 1
            if self._open_ssts >= self.ssts_per_zone:
                yield from self._seal(zone_id)

    def _seal(self, zone_id: int) -> Generator:
        completion = yield self.tenant.submit(Command(
            Opcode.ZONE_MGMT, slba=self._zslba(zone_id),
            action=ZoneAction.FINISH))
        if not completion.ok:
            self.tenant.record_error(completion.status, self._zslba(zone_id))
        self._sealed.append(zone_id)
        self._open = None
        self._open_ssts = 0

    # -- maintenance: background compaction ------------------------------
    def _compactor(self) -> Generator:
        tenant = self.tenant
        config = self.config
        while self.sim.now < self.until_ns:
            if len(self._sealed) < config.compact_trigger or not self._free:
                yield self.sim.timeout(config.flush_interval_ns)
                continue
            source = self._sealed.pop(0)
            victims = [s for s in self._catalog if s.zone == source and s.live]
            survivors = max(1, int(len(victims) * config.survivor_fraction))
            # Read the source SSTs back (compaction read traffic)...
            for sst in victims:
                completion = yield tenant.submit(Command(
                    Opcode.READ,
                    slba=self._zslba(source) + sst.offset // self._block,
                    nlb=sst.length // self._block))
                if not completion.ok:
                    tenant.record_error(
                        completion.status,
                        self._zslba(source) + sst.offset // self._block)
            # ...append the merged output into a fresh zone...
            target = self._free.pop(0)
            offset = 0
            for _ in range(survivors):
                for chunk_start in range(0, config.sst_bytes,
                                         config.append_chunk):
                    chunk = min(config.append_chunk,
                                config.sst_bytes - chunk_start)
                    completion = yield tenant.submit(Command(
                        Opcode.APPEND, slba=self._zslba(target),
                        nlb=chunk // self._block))
                    if not completion.ok:
                        tenant.record_error(completion.status,
                                            self._zslba(target))
                self._catalog.append(_Sst(target, offset, config.sst_bytes))
                offset += config.sst_bytes
            # ...and reclaim the source: drop its SSTs, reset the zone.
            for sst in victims:
                sst.live = False
            self._catalog = [s for s in self._catalog if s.live]
            completion = yield tenant.submit(Command(
                Opcode.ZONE_MGMT, slba=self._zslba(source),
                action=ZoneAction.RESET))
            if completion.ok:
                tenant.record_reset(completion.latency_ns)
                self._free.append(source)
            else:
                tenant.record_error(completion.status, self._zslba(source))
            # Seal the output zone so compaction does not accumulate
            # open zones against the device's max-open limit.
            completion = yield tenant.submit(Command(
                Opcode.ZONE_MGMT, slba=self._zslba(target),
                action=ZoneAction.FINISH))
            if not completion.ok:
                tenant.record_error(completion.status, self._zslba(target))
            self._sealed.append(target)
            self.compactions += 1

    # -- serving path: point reads ----------------------------------------
    def _reader(self, reader: int) -> Generator:
        tenant = self.tenant
        config = self.config
        rng = tenant.rng(f"lsm-read/{reader}")
        blocks_per_read = config.read_bytes // self._block
        while self.sim.now < self.until_ns:
            think = int(rng.exponential(config.read_interval_ns))
            yield self.sim.timeout(max(1, think))
            if not self._catalog:
                continue
            sst = self._catalog[int(rng.integers(0, len(self._catalog)))]
            max_block = sst.length // self._block - blocks_per_read
            within = int(rng.integers(0, max_block + 1)) if max_block > 0 else 0
            slba = (self._zslba(sst.zone)
                    + sst.offset // self._block + within)
            completion = yield tenant.submit(Command(
                Opcode.READ, slba=slba, nlb=blocks_per_read))
            self.reads += 1
            if completion.ok:
                tenant.record(completion, config.read_bytes)
            else:
                # The SST's zone was reset/rewritten between the catalog
                # lookup and the device's service — a stale read, the
                # LSM analogue of a cache miss racing an eviction.
                self.stale_reads += 1
                tenant.record_error(completion.status, slba)
