"""Per-layer simulated-time breakdown of a recorded trace.

``repro profile <experiment>`` answers the question the raw latency
tables cannot: *where inside the model does each microsecond go?* It
runs an experiment with a live :class:`~repro.obs.tracer.Tracer`, then
folds the recorded spans into

* a per-opcode latency table (count, mean, p50, p95, max) from the
  end-to-end ``command`` spans, and
* a per-layer attribution: for each command, the spans of one category
  ("queue", "controller", "nand", "buffer", "firmware", "host") are
  merged as an *interval union* before summing, so a read fanned out to
  eight dies in parallel counts its NAND wall time once, not eight
  times, and the device-level ``read.fanout`` span does not double the
  per-die ``read.page`` spans beneath it.

Spans with no command id (GC runs, background flushes) are reported in
a separate background table; they consume device time but belong to no
single command.

This module deliberately avoids importing ``repro.core`` at module
scope (``repro.core`` imports device code that imports ``repro.obs``);
the experiment registry is resolved lazily inside
:func:`profile_experiment`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Optional

from .tracer import PH_COMPLETE, TraceEvent, Tracer

__all__ = [
    "CODE_LAYERS",
    "LAYER_ORDER",
    "LayerBreakdown",
    "code_layer_of",
    "profile_experiment",
    "run_self_profile",
    "run_self_profile_by_layer",
]

#: Layer categories in stack order (host-side first, media last).
LAYER_ORDER = ("host", "queue", "controller", "buffer", "nand", "firmware")


def _union_ns(intervals: list[tuple[int, int]]) -> int:
    """Total length of the union of ``[start, end)`` intervals."""
    total = 0
    reach = None
    for start, end in sorted(intervals):
        if reach is None or start >= reach:
            total += end - start
            reach = end
        elif end > reach:
            total += end - reach
            reach = end
    return total


def _percentile(sorted_values: list[int], p: float) -> float:
    """Nearest-rank-with-interpolation percentile on a sorted list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (p / 100.0) * (len(sorted_values) - 1)
    lo = int(rank)
    frac = rank - lo
    if lo + 1 >= len(sorted_values):
        return float(sorted_values[-1])
    return sorted_values[lo] * (1 - frac) + sorted_values[lo + 1] * frac


class LayerBreakdown:
    """Folds a tracer's spans into per-opcode and per-layer tables."""

    def __init__(self, events: list[TraceEvent]):
        #: opcode → sorted end-to-end command durations (ns)
        self.command_durations: dict[str, list[int]] = {}
        #: layer category → attributed ns (per-command interval union)
        self.layer_ns: dict[str, int] = {layer: 0 for layer in LAYER_ORDER}
        #: (cat, name) → [count, total ns] for spans with no command id
        self.background: dict[tuple[str, str], list[int]] = {}
        #: die track → busy ns (from "nand" spans)
        self.die_busy_ns: dict[str, int] = {}
        self.total_command_ns = 0
        self.zone_transitions = 0

        per_cmd: dict[tuple[int, str], list[tuple[int, int]]] = defaultdict(list)
        durations: dict[str, list[int]] = defaultdict(list)
        for event in events:
            if event.cat == "zone":
                self.zone_transitions += 1
                continue
            if event.ph != PH_COMPLETE:
                continue
            interval = (event.ts, event.ts + event.dur)
            if event.cat == "command":
                opcode = event.args.get("opcode", event.name)
                durations[opcode].append(event.dur)
                self.total_command_ns += event.dur
                continue
            if event.cat == "nand" and event.track.startswith("die"):
                self.die_busy_ns[event.track] = (
                    self.die_busy_ns.get(event.track, 0) + event.dur
                )
            cid = event.args.get("cid", 0)
            if cid and event.cat in self.layer_ns:
                per_cmd[(cid, event.cat)].append(interval)
            else:
                entry = self.background.setdefault((event.cat, event.name), [0, 0])
                entry[0] += 1
                entry[1] += event.dur
        for (_cid, cat), intervals in per_cmd.items():
            self.layer_ns[cat] += _union_ns(intervals)
        self.command_durations = {
            opcode: sorted(vals) for opcode, vals in durations.items()
        }

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "LayerBreakdown":
        return cls(tracer.events())

    @property
    def command_count(self) -> int:
        return sum(len(v) for v in self.command_durations.values())

    def layer_share(self, layer: str) -> float:
        """Attributed time in ``layer`` as a fraction of command time."""
        if self.total_command_ns == 0:
            return 0.0
        return self.layer_ns.get(layer, 0) / self.total_command_ns

    # -- rendering -------------------------------------------------------
    def table(self) -> str:
        lines: list[str] = []
        lines.append("per-opcode latency (simulated, from command spans)")
        lines.append(
            f"  {'opcode':<12} {'count':>8} {'mean_us':>10} {'p50_us':>10} "
            f"{'p95_us':>10} {'max_us':>10}"
        )
        for opcode in sorted(self.command_durations):
            vals = self.command_durations[opcode]
            mean = sum(vals) / len(vals)
            lines.append(
                f"  {opcode:<12} {len(vals):>8} {mean / 1e3:>10.2f} "
                f"{_percentile(vals, 50) / 1e3:>10.2f} "
                f"{_percentile(vals, 95) / 1e3:>10.2f} "
                f"{vals[-1] / 1e3:>10.2f}"
            )
        if not self.command_durations:
            lines.append("  (no command spans recorded)")
        lines.append("")
        lines.append(
            "per-layer attribution (interval union per command; "
            "share of total command time)"
        )
        lines.append(f"  {'layer':<12} {'time_ms':>10} {'share':>8}")
        for layer in LAYER_ORDER:
            ns = self.layer_ns[layer]
            lines.append(
                f"  {layer:<12} {ns / 1e6:>10.3f} "
                f"{100 * self.layer_share(layer):>7.1f}%"
            )
        lines.append(
            f"  {'(commands)':<12} {self.total_command_ns / 1e6:>10.3f} "
            f"{'100.0%':>8}"
        )
        if self.background:
            lines.append("")
            lines.append("background work (no owning command)")
            lines.append(f"  {'span':<28} {'count':>8} {'time_ms':>10}")
            for (cat, name), (count, ns) in sorted(
                self.background.items(), key=lambda kv: -kv[1][1]
            ):
                lines.append(
                    f"  {cat + '/' + name:<28} {count:>8} {ns / 1e6:>10.3f}"
                )
        if self.die_busy_ns:
            lines.append("")
            busiest = max(self.die_busy_ns.values())
            lines.append(
                f"die busy time ({len(self.die_busy_ns)} dies active, "
                f"busiest {busiest / 1e6:.3f} ms)"
            )
        if self.zone_transitions:
            lines.append(f"zone transitions observed: {self.zone_transitions}")
        return "\n".join(lines)


def profile_experiment(
    exp_id: str, config: Optional[Any] = None
) -> tuple[Tracer, LayerBreakdown, Any]:
    """Run one experiment under a fresh tracer; returns
    ``(tracer, breakdown, experiment_result)``."""
    # Lazy: repro.core imports the device stack which imports repro.obs.
    from dataclasses import replace

    from ..core.experiments.common import ExperimentConfig
    from ..core.report import EXPERIMENT_RUNNERS

    runners = EXPERIMENT_RUNNERS()
    if exp_id not in runners:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {list(runners)}"
        )
    tracer = Tracer()
    config = replace(config or ExperimentConfig(), tracer=tracer)
    result = runners[exp_id](config)
    return tracer, LayerBreakdown.from_tracer(tracer), result


def _self_smoke_workload(tracer: Optional[Tracer] = None) -> None:
    """Appends, reads, and a reset on a small device (optionally traced)."""
    from ..hostif.commands import Command, Opcode, ZoneAction
    from ..sim.engine import Simulator
    from ..zns.device import ZnsDevice
    from ..zns.profiles import zn540_small

    sim = Simulator()
    device = ZnsDevice(sim, zn540_small(), tracer=tracer)
    nlb = device.namespace.lbas(16 * 1024)
    zone = device.zones.zones[0]
    for _ in range(32):
        sim.run(until=device.submit(
            Command(Opcode.APPEND, slba=zone.zslba, nlb=nlb)))
    for i in range(16):
        sim.run(until=device.submit(
            Command(Opcode.READ, slba=zone.zslba + i * nlb, nlb=nlb)))
    sim.run(until=device.submit(
        Command(Opcode.ZONE_MGMT, slba=zone.zslba, action=ZoneAction.RESET)))


def run_self_profile() -> tuple[Tracer, LayerBreakdown]:
    """A built-in smoke workload: appends, reads, and a reset on a small
    device, traced end to end. Used by ``repro profile --self`` and CI."""
    tracer = Tracer()
    _self_smoke_workload(tracer)
    return tracer, LayerBreakdown.from_tracer(tracer)


#: Code-layer buckets for ``profile --self --by-layer``, matched against
#: source paths in declaration order (first hit wins). "core-pipeline"
#: is the shared device layer (:mod:`repro.device`); the model buckets
#: are what remains specific to each device; "faults", "workload" and
#: "exec-engine" attribute the newer subsystems instead of lumping them
#: into "other-repro".
CODE_LAYERS = (
    ("core-pipeline", "/repro/device/"),
    ("zns-model", "/repro/zns/"),
    ("conv-model", "/repro/conv/"),
    ("flash-backend", "/repro/flash/"),
    ("sim-engine", "/repro/sim/"),
    ("host-side", "/repro/hostif/"),
    ("host-stacks", "/repro/stacks/"),
    ("observability", "/repro/obs/"),
    ("faults", "/repro/faults/"),
    ("workload", "/repro/workload/"),
    ("exec-engine", "/repro/exec/"),
)


def code_layer_of(filename: str) -> str:
    """Bucket one source path into a code layer."""
    normalized = filename.replace("\\", "/")
    for layer, fragment in CODE_LAYERS:
        if fragment in normalized:
            return layer
    if "/repro/" in normalized:
        return "other-repro"
    return "python-runtime"


def run_self_profile_by_layer(repeat: int = 20) -> tuple[dict[str, float], str]:
    """Attribute the smoke workload's *Python* compute time to code
    layers (``repro profile --self --by-layer``).

    Runs the untraced smoke workload ``repeat`` times under cProfile
    and buckets per-function self time (tottime) by source path. This
    is wall-clock attribution — which code the interpreter spends its
    time in — complementing :class:`LayerBreakdown`, which attributes
    *simulated* time. Returns ``(seconds-by-layer, rendered table)``.
    """
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(repeat):
        _self_smoke_workload()
    profiler.disable()

    totals: dict[str, float] = defaultdict(float)
    for entry in profiler.getstats():
        filename = getattr(entry.code, "co_filename", "")
        totals[code_layer_of(filename)] += entry.inlinetime
    grand_total = sum(totals.values()) or 1.0

    lines = [
        f"per-code-layer Python self time ({repeat} untraced iterations)",
        f"  {'layer':<14} {'time_ms':>10} {'share':>8}",
    ]
    for layer, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
        lines.append(
            f"  {layer:<14} {seconds * 1e3:>10.3f} "
            f"{100 * seconds / grand_total:>7.1f}%"
        )
    return dict(totals), "\n".join(lines)
