"""Span-style command-lifecycle tracing in simulated nanoseconds.

The tracer is the observation half of the mechanistic model: every layer
of the simulated stack (host stack overhead, queue waits, controller
service, NAND die/bus occupancy, write-buffer admission, firmware
management work, GC) records *spans* — ``[start_ns, end_ns)`` intervals
on the integer simulated clock — tagged with a per-command id, so a
single measured latency can be decomposed into where simulated time was
actually spent (the blktrace/zns-tools tradition, applied to the model
instead of a real ZN540).

Design constraints:

* **Zero overhead when off.** Layers hold a :data:`NULL_TRACER` by
  default whose recording methods are no-ops; tracing never touches the
  RNG streams or the event heap, so a traced run and an untraced run
  produce *identical* simulation results (asserted by the test suite).
* **Deterministic.** Events carry only simulated time; exports sort by
  ``(ts, insertion order)`` so files are byte-stable across runs.
* **Tool-friendly.** Two export formats: JSON-lines (one event per
  line, nanosecond timestamps, trivially greppable) and the Chrome
  ``trace_event`` JSON format loadable in Perfetto / chrome://tracing
  (microsecond timestamps, per the format spec).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Any, Iterator, Optional

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "resolve_tracer",
    "PH_COMPLETE",
    "PH_INSTANT",
    "PH_COUNTER",
    "PH_METADATA",
]

#: Chrome trace_event phase codes used by this tracer.
PH_COMPLETE = "X"  # a span with an explicit duration
PH_INSTANT = "i"   # a point-in-time marker
PH_COUNTER = "C"   # a sampled counter value
PH_METADATA = "M"  # process/thread naming (emitted on export only)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event.

    ``ts``/``dur`` are integer simulated nanoseconds. ``track`` names
    the logical execution lane ("controller", "die3", "firmware", ...)
    and becomes the thread id in the Chrome export; ``args`` carries the
    structured payload (``cid`` ties layer spans to their command).
    """

    name: str
    cat: str
    ph: str
    ts: int
    dur: int = 0
    track: str = "main"
    args: dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "track": self.track,
        }
        if self.ph == PH_COMPLETE:
            data["dur"] = self.dur
        if self.args:
            data["args"] = self.args
        return data


class Tracer:
    """Collects :class:`TraceEvent` records from an instrumented run.

    One tracer may observe several devices/simulators (the experiment
    drivers build a fresh device per measured point); each device calls
    :meth:`register_process` once and records events against the
    returned process id, which keeps the points separable in Perfetto.
    """

    enabled = True

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._pids: list[tuple[int, str]] = []   # (pid, label)
        self._event_pids: list[int] = []         # parallel to _events
        self._cmd_seq = 0
        self._cur_pid = 0

    # -- bookkeeping -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def events(self) -> list[TraceEvent]:
        """All events in monotonic ``(ts, insertion)`` order."""
        order = sorted(range(len(self._events)),
                       key=lambda i: (self._events[i].ts, i))
        return [self._events[i] for i in order]

    def register_process(self, label: str) -> int:
        """Declare a new process group (one per device); returns its pid.

        Subsequent events record under the most recently registered pid,
        matching how experiment drivers build and run one device at a
        time.
        """
        pid = len(self._pids) + 1
        self._pids.append((pid, label))
        self._cur_pid = pid
        return pid

    def begin_command(self, opcode: str) -> int:
        """Allocate the next command id (ties layer spans to a command)."""
        self._cmd_seq += 1
        return self._cmd_seq

    @property
    def commands_traced(self) -> int:
        return self._cmd_seq

    # -- recording -------------------------------------------------------
    def _append(self, event: TraceEvent) -> None:
        self._events.append(event)
        self._event_pids.append(self._cur_pid)

    def span(self, cat: str, name: str, start_ns: int, end_ns: int,
             track: str = "main", **args: Any) -> None:
        """Record a completed span ``[start_ns, end_ns)``."""
        if end_ns < start_ns:
            raise ValueError(f"span {name!r} ends before it starts "
                             f"({start_ns}..{end_ns})")
        self._events.append(TraceEvent(name=name, cat=cat, ph=PH_COMPLETE,
                                       ts=start_ns, dur=end_ns - start_ns,
                                       track=track, args=args))
        self._event_pids.append(self._cur_pid)

    def instant(self, cat: str, name: str, ts_ns: int,
                track: str = "main", **args: Any) -> None:
        """Record a point event (zone transition, GC wakeup, ...)."""
        self._events.append(TraceEvent(name=name, cat=cat, ph=PH_INSTANT,
                                       ts=ts_ns, track=track, args=args))
        self._event_pids.append(self._cur_pid)

    def counter(self, name: str, ts_ns: int, value: float,
                track: str = "counters") -> None:
        """Record a sampled counter value (queue depth, buffer fill, ...)."""
        self._events.append(TraceEvent(name=name, cat="counter", ph=PH_COUNTER,
                                       ts=ts_ns, track=track,
                                       args={"value": value}))
        self._event_pids.append(self._cur_pid)

    # -- export ----------------------------------------------------------
    def write_jsonl(self, path_or_file) -> int:
        """Write events as JSON-lines (ns timestamps); returns the count."""
        events = self.events()
        if hasattr(path_or_file, "write"):
            self._write_jsonl(path_or_file, events)
        else:
            with open(path_or_file, "w") as handle:
                self._write_jsonl(handle, events)
        return len(events)

    @staticmethod
    def _write_jsonl(handle: IO[str], events: list[TraceEvent]) -> None:
        for event in events:
            handle.write(json.dumps(event.to_json_dict(), sort_keys=True))
            handle.write("\n")

    def to_chrome_trace(self) -> dict[str, Any]:
        """The Chrome ``trace_event`` JSON object (Perfetto-loadable).

        Timestamps convert from simulated ns to the format's µs unit;
        integer-ns precision is preserved as fractional µs. Track names
        map to stable small thread ids with ``thread_name`` metadata.
        """
        trace_events: list[dict[str, Any]] = []
        for pid, label in (self._pids or [(1, "sim")]):
            trace_events.append({
                "name": "process_name", "ph": PH_METADATA, "pid": pid,
                "tid": 0, "args": {"name": label},
            })
        tids: dict[tuple[int, str], int] = {}
        order = sorted(range(len(self._events)),
                       key=lambda i: (self._events[i].ts, i))
        for i in order:
            event = self._events[i]
            pid = self._event_pids[i] or 1
            key = (pid, event.track)
            tid = tids.get(key)
            if tid is None:
                tid = len([k for k in tids if k[0] == pid]) + 1
                tids[key] = tid
                trace_events.append({
                    "name": "thread_name", "ph": PH_METADATA, "pid": pid,
                    "tid": tid, "args": {"name": event.track},
                })
            entry: dict[str, Any] = {
                "name": event.name,
                "cat": event.cat,
                "ph": event.ph,
                "ts": event.ts / 1_000,
                "pid": pid,
                "tid": tid,
            }
            if event.ph == PH_COMPLETE:
                entry["dur"] = event.dur / 1_000
            if event.ph == PH_INSTANT:
                entry["s"] = "t"  # thread-scoped instant
            if event.ph == PH_COUNTER:
                entry["args"] = {event.name: event.args.get("value", 0)}
            elif event.args:
                entry["args"] = event.args
            trace_events.append(entry)
        return {"traceEvents": trace_events, "displayTimeUnit": "ns"}

    def write_chrome_trace(self, path_or_file) -> int:
        """Write the Perfetto/chrome://tracing file; returns event count."""
        payload = self.to_chrome_trace()
        if hasattr(path_or_file, "write"):
            json.dump(payload, path_or_file)
        else:
            with open(path_or_file, "w") as handle:
                json.dump(payload, handle)
        return len(payload["traceEvents"])


class NullTracer(Tracer):
    """The disabled tracer: every recording method is a no-op.

    Injected by default everywhere, so untraced runs pay only an
    attribute load + no-op call on the paths that record — and, because
    tracing never touches simulation state, results are identical either
    way.
    """

    enabled = False

    def register_process(self, label: str) -> int:
        return 0

    def begin_command(self, opcode: str) -> int:
        return 0

    def span(self, cat: str, name: str, start_ns: int, end_ns: int,
             track: str = "main", **args: Any) -> None:
        pass

    def instant(self, cat: str, name: str, ts_ns: int,
                track: str = "main", **args: Any) -> None:
        pass

    def counter(self, name: str, ts_ns: int, value: float,
                track: str = "counters") -> None:
        pass


#: Shared do-nothing tracer instance (safe: it keeps no state).
NULL_TRACER = NullTracer()


def resolve_tracer(tracer: Optional[Tracer]) -> Tracer:
    """``None`` → the shared :data:`NULL_TRACER` (the common default)."""
    return NULL_TRACER if tracer is None else tracer
