"""Time-resolved telemetry: windowed metric timeseries per sweep point.

The aggregate :class:`~repro.obs.metrics.MetricsRegistry` answers "what
happened over the whole run"; this module answers "when". A
:class:`TelemetrySampler` rides the simulator's tick hook
(:meth:`repro.sim.engine.Simulator.add_tick_hook`) and, every
``interval_ns`` of *simulated* time, snapshots the device's registry plus
a few model internals the registry does not carry (per-zone-state census,
FTL free space, GC occupancy, per-die busy time). Each sample is a
*windowed delta*: counters report the increase since the previous row,
latency histograms report the count and interpolated p50/p95/p99 of only
the observations that landed in the window, gauges report their
instantaneous level, and per-die busy nanoseconds become a busy
*fraction* of the window. The result is a compact columnar segment —
parallel arrays keyed by metric name — cheap to JSON-encode and merge.

Determinism contract (the whole point of the design):

* the sampler installs **zero simulation events** — it observes clock
  advances from inside the dispatch loop and never touches the RNG, the
  heap, or the ready deque, so enabling telemetry cannot perturb the
  simulated execution;
* window boundaries are pure integer arithmetic on the simulated clock,
  so the same point produces bit-identical segments in any worker
  process at any ``--jobs``;
* empty windows produce **no row** — a row's deltas cover the whole
  span since the previous row (``spans`` records how many intervals
  that is), which keeps idle stretches free instead of materializing
  runs of zeros.

``TelemetryCollector`` is the per-point aggregation handle: experiment
code puts one on the :class:`~repro.core.experiments.common
.ExperimentConfig`, every device built for the point attaches a sampler
(in construction order, which is deterministic), and the execution
engine drains the collector into the point's reply/cache entry.
"""

from __future__ import annotations

from typing import Any, Optional

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["TelemetryCollector", "TelemetrySampler", "DEFAULT_INTERVAL_US"]

#: Default sampling interval (simulated microseconds) for ``--telemetry``.
DEFAULT_INTERVAL_US = 100.0

#: Percentiles computed per latency histogram per window.
_PERCENTILES = (50, 95, 99)


def _delta_percentile(bounds: tuple[int, ...], dcounts: list[int],
                      dtotal: int, p: float) -> float:
    """Interpolated percentile of a *delta* histogram (mirror of
    :meth:`Histogram.percentile` over windowed bucket counts)."""
    rank = p / 100 * dtotal
    cumulative = 0
    last = len(bounds)
    for i, count in enumerate(dcounts):
        if count > 0 and cumulative + count >= rank:
            lower = 0 if i == 0 else bounds[i - 1]
            if i == last:
                return float(lower)  # overflow bucket: clamp to last bound
            upper = bounds[i]
            fraction = (rank - cumulative) / count
            return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        cumulative += count
    return float(bounds[-1])


class TelemetrySampler:
    """Windowed columnar sampler for one device.

    Attached by :meth:`TelemetryCollector.attach` from the device
    constructor; never instantiate directly. All state is plain Python —
    the per-advance cost while armed is a single integer comparison
    (:meth:`_on_advance`), and the per-window cost is one pass over the
    device's registry.
    """

    __slots__ = (
        "interval_ns", "device", "ordinal",
        "_closed", "_next", "_rows", "_windows", "_spans", "_cols",
        "_prev_counters", "_prev_hists", "_prev_cumulative", "_finalized",
    )

    def __init__(self, interval_ns: int, device: Any, ordinal: int):
        self.interval_ns = interval_ns
        self.device = device
        self.ordinal = ordinal
        self._closed = 0          # completed windows already sampled
        self._next = interval_ns  # sim time at which the next row closes
        self._rows = 0
        self._windows: list[int] = []
        self._spans: list[int] = []
        self._cols: dict[str, list] = {}
        self._prev_counters: dict[str, int] = {}
        self._prev_hists: dict[str, tuple[list[int], int]] = {}
        self._prev_cumulative: dict[str, int] = {}
        self._finalized = False

    # ------------------------------------------------------------- sampling
    def _on_advance(self, now: int) -> None:
        """Tick hook: close every window the clock has fully passed.

        Runs inside the dispatch loop — must stay passive (no events,
        no RNG; see :meth:`Simulator.add_tick_hook`).
        """
        if now < self._next:
            return
        completed = now // self.interval_ns
        self._sample(completed, completed * self.interval_ns)
        self._next = (completed + 1) * self.interval_ns

    def _sample(self, completed: int, end_ns: int) -> None:
        """Emit one row covering ``(last row .. completed]`` windows."""
        span = completed - self._closed
        elapsed = end_ns - self._closed * self.interval_ns
        if elapsed <= 0:
            elapsed = self.interval_ns
        cols = self._cols
        nrows = self._rows

        def put(name: str, value, pad=0) -> None:
            col = cols.get(name)
            if col is None:
                col = [pad] * nrows
                cols[name] = col
            col.append(value)

        device = self.device
        prev_counters = self._prev_counters
        prev_hists = self._prev_hists
        for metric in device.metrics:
            name = metric.name
            cls = type(metric)
            if cls is Counter:
                value = metric.value
                put(name, value - prev_counters.get(name, 0))
                prev_counters[name] = value
            elif cls is Gauge:
                # Per-die busy gauges mirror the backend's cumulative
                # counters; the fraction columns below cover them.
                if not name.startswith("nand.die"):
                    put(name, metric.value)
            elif cls is Histogram:
                counts = metric.counts
                total = metric.total
                prev = prev_hists.get(name)
                if prev is None:
                    dcounts = list(counts)
                    dtotal = total
                else:
                    pcounts, ptotal = prev
                    dtotal = total - ptotal
                    dcounts = (
                        [c - p for c, p in zip(counts, pcounts)]
                        if dtotal else None
                    )
                put(f"{name}.count", dtotal)
                for p in _PERCENTILES:
                    put(
                        f"{name}.p{p}",
                        round(_delta_percentile(metric.bounds, dcounts,
                                                dtotal, p), 1)
                        if dtotal else None,
                        pad=None,
                    )
                prev_hists[name] = (list(counts), total)
        for name, value in device._telemetry_levels().items():
            put(name, value)
        prev_cumulative = self._prev_cumulative
        for name, value in device._telemetry_cumulative().items():
            delta = value - prev_cumulative.get(name, 0)
            prev_cumulative[name] = value
            if name.endswith(".busy_ns"):
                put(name[: -len(".busy_ns")] + ".busy_frac",
                    round(delta / elapsed, 6))
            else:
                put(name, delta)
        # Columns that appeared in earlier rows but not this pass cannot
        # happen: registries only grow and the hooks return stable key
        # sets per device — but guard anyway so a drained column never
        # desynchronizes row counts.
        self._rows += 1
        for col in cols.values():
            if len(col) < self._rows:
                col.append(None)
        self._windows.append(completed)
        self._spans.append(span)
        self._closed = completed

    # ------------------------------------------------------------- finalize
    def segment(self) -> dict[str, Any]:
        """Close the partial final window and return the columnar segment.

        The final row always exists (it carries the end-of-run census
        and any activity after the last boundary); all-zero columns are
        dropped — absence means "never moved".
        """
        if not self._finalized:
            self._finalized = True
            now = int(self.device.sim.now)
            self._sample(self._closed + 1, now)
        columns = {}
        for name in sorted(self._cols):
            col = self._cols[name]
            if any(v is not None and v != 0 for v in col):
                columns[name] = col
        return {
            "device": f"{self.device.kind}:{self.device.profile.name}",
            "ordinal": self.ordinal,
            "interval_ns": self.interval_ns,
            "rows": self._rows,
            "end_ns": int(self.device.sim.now),
            "windows": self._windows,
            "spans": self._spans,
            "columns": columns,
        }


class TelemetryCollector:
    """Per-sweep-point handle tying device samplers to the exec engine.

    One collector per point; each device built while it is on the config
    calls :meth:`attach` (from ``DeviceCore.__init__``) and gets its own
    sampler wired to that device's simulator. :meth:`drain` returns the
    finalized segments in attach order — deterministic because device
    construction order within a point is.
    """

    __slots__ = ("interval_ns", "_samplers")

    def __init__(self, interval_ns: int):
        interval_ns = int(interval_ns)
        if interval_ns <= 0:
            raise ValueError(f"telemetry interval must be > 0 ns, got {interval_ns}")
        self.interval_ns = interval_ns
        self._samplers: list[TelemetrySampler] = []

    def attach(self, device: Any) -> TelemetrySampler:
        sampler = TelemetrySampler(self.interval_ns, device,
                                   ordinal=len(self._samplers))
        self._samplers.append(sampler)
        device.sim.add_tick_hook(sampler._on_advance)
        return sampler

    def drain(self) -> list[dict[str, Any]]:
        return [sampler.segment() for sampler in self._samplers]
