"""Counters, gauges, and fixed-bucket histograms for the simulated stack.

A :class:`MetricsRegistry` is the one place run-time statistics live:
devices publish completion counts, error counts, byte totals, queue
depths, write-buffer fill, and per-opcode latency histograms; the
workload runner publishes job-level op/byte/latency aggregates. The
legacy ``DeviceCounters`` accounting is now a thin façade over a
registry (see :mod:`repro.zns.device`).

Everything is plain integer/float arithmetic on the simulated-time
observations — metrics never touch the RNG or the event heap, so
enabling them cannot change simulation results.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence, Union

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_NS",
]

#: Exponential latency buckets: 1 µs .. ~8.6 s in powers of two (ns).
DEFAULT_LATENCY_BUCKETS_NS: tuple[int, ...] = tuple(
    1_000 * 2**i for i in range(24)
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value, with high-watermark tracking."""

    __slots__ = ("name", "help", "value", "max_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def snapshot(self) -> dict[str, float]:
        return {"value": self.value, "max": self.max_value}


class Histogram:
    """A fixed-bucket histogram with interpolated percentile queries.

    ``bounds`` are inclusive upper bounds of each bucket; one implicit
    overflow bucket catches everything above the last bound. Percentiles
    interpolate linearly within the winning bucket (the standard
    Prometheus-style estimate), which the bucket-math unit tests pin
    down exactly.

    Bucketing is deferred: observations queue in ``_pending`` and are
    folded into the bucket counts in one vectorized pass when any
    aggregate (``counts``/``total``/``sum``/percentiles/snapshots) is
    read, or when the queue reaches ``_FLUSH_THRESHOLD``. Deferral is
    invisible to readers — every accessor flushes first — and cannot
    reorder anything: bucket counts are order-independent and the sum is
    accumulated with exact integer arithmetic (DESIGN.md §15).
    """

    __slots__ = ("name", "help", "bounds", "_bounds_arr",
                 "_counts", "_total", "_sum", "_pending")

    #: Pending observations that trigger an automatic flush. Bounds the
    #: queue's memory without flushing so often the numpy call overhead
    #: dominates.
    _FLUSH_THRESHOLD = 4096

    def __init__(self, name: str, bounds: Sequence[int], help: str = ""):
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = list(bounds)
        if sorted(ordered) != ordered or len(set(ordered)) != len(ordered):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.name = name
        self.help = help
        self.bounds: tuple[int, ...] = tuple(ordered)
        self._bounds_arr = np.asarray(ordered)
        self._counts = [0] * (len(ordered) + 1)
        self._total = 0
        self._sum = 0
        self._pending: list = []

    def observe(self, value: Union[int, float]) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name!r} observed negative {value}")
        pending = self._pending
        pending.append(value)
        if len(pending) >= self._FLUSH_THRESHOLD:
            self._flush()

    def observe_many(self, values: Sequence[Union[int, float]]) -> None:
        """Record a batch of observations in one call.

        Equivalent to ``observe`` per value (the whole batch is
        validated before any value is queued, so a bad batch never
        leaves the histogram partially updated).
        """
        batch = np.asarray(values).ravel().tolist()
        if not batch:
            return
        low = min(batch)
        if low < 0:
            raise ValueError(
                f"histogram {self.name!r} observed negative {low}"
            )
        pending = self._pending
        pending.extend(batch)
        if len(pending) >= self._FLUSH_THRESHOLD:
            self._flush()

    def _flush(self) -> None:
        """Fold queued observations into the bucket counts (vectorized).

        ``searchsorted(..., side="left")`` computes exactly
        ``bisect_left(bounds, value)`` per value; ``bincount`` then
        accumulates per-bucket. The sum uses builtin ``sum`` over the
        original values so integer observations stay exact (no float64
        rounding at large totals).
        """
        pending = self._pending
        if not pending:
            return
        idx = np.searchsorted(self._bounds_arr, np.asarray(pending),
                              side="left")
        binned = np.bincount(idx, minlength=len(self._counts)).tolist()
        counts = self._counts
        for i, c in enumerate(binned):
            if c:
                counts[i] += c
        self._total += len(pending)
        self._sum += sum(pending)
        self._pending = []

    @property
    def counts(self) -> list[int]:
        """Live per-bucket counts (last entry is the overflow bucket)."""
        if self._pending:
            self._flush()
        return self._counts

    @property
    def total(self) -> int:
        if self._pending:
            self._flush()
        return self._total

    @total.setter
    def total(self, value: int) -> None:
        self._total = value

    @property
    def sum(self):
        if self._pending:
            self._flush()
        return self._sum

    @sum.setter
    def sum(self, value) -> None:
        self._sum = value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def percentile(self, p: float) -> float:
        """Interpolated p-th percentile (p in [0, 100]).

        An empty histogram has no percentiles: returns NaN rather than
        raising, so periodic samplers and report generators can query
        idle windows without guarding every call. Out-of-range ``p`` is
        still a caller bug and raises.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.total == 0:
            return float("nan")
        rank = p / 100 * self.total
        cumulative = 0
        for i, count in enumerate(self.counts):
            if cumulative + count >= rank and count > 0:
                lower = 0 if i == 0 else self.bounds[i - 1]
                if i == len(self.bounds):
                    return float(lower)  # overflow bucket: clamp to last bound
                upper = self.bounds[i]
                fraction = (rank - cumulative) / count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
            cumulative += count
        return float(self.bounds[-1])

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.total,
            "sum": self.sum,
            "mean": self.mean,
            "buckets": dict(zip(self.bounds, self.counts)),
            "overflow": self.counts[-1],
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named get-or-create store of counters/gauges/histograms."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    # -- access ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def _get_or_create(self, name: str, kind: type, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(self, name: str,
                  bounds: Sequence[int] = DEFAULT_LATENCY_BUCKETS_NS,
                  help: str = "") -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, bounds, help)
        )

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used by the execution engine to combine per-worker registries:
        counters add, histograms add bucket-wise, gauges take the
        incoming value (last write wins) and the max of the two highs.

        Gauge semantics are **pinned, not incidental**: the engine merges
        snapshots in *plan order* (the deterministic point order emitted
        by the experiment plan), never in completion order, so the gauge
        value that survives is always the last plan point's — regardless
        of ``--jobs`` or which worker finished first. That is what makes
        merged ``--metrics`` output byte-identical across job counts,
        and it matches what one serial registry would have recorded (up
        to gauge instantaneous values). Metric kinds are inferred from
        the snapshot shape. JSON round-trips turn histogram bucket
        bounds into strings; they are coerced back to ints here.
        """
        for name, data in snapshot.items():
            if isinstance(data, (int, float)) and not isinstance(data, bool):
                self.counter(name).inc(int(data))
            elif isinstance(data, dict) and "buckets" in data:
                bounds = sorted(int(b) for b in data["buckets"])
                histogram = self.histogram(name, bounds=bounds)
                if list(histogram.bounds) != bounds:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ: "
                        f"{histogram.bounds} vs {tuple(bounds)}"
                    )
                incoming = {int(b): c for b, c in data["buckets"].items()}
                for i, bound in enumerate(histogram.bounds):
                    histogram.counts[i] += incoming[bound]
                histogram.counts[-1] += data["overflow"]
                histogram.total += data["count"]
                histogram.sum += data["sum"]
            elif isinstance(data, dict) and "value" in data:
                gauge = self.gauge(name)
                gauge.value = data["value"]
                gauge.max_value = max(gauge.max_value, data["max"])
            else:
                raise ValueError(
                    f"unrecognized snapshot shape for metric {name!r}: {data!r}"
                )

    def table(self, title: str = "[metrics]") -> str:
        """A plain-text dump: one line per metric, sorted by name."""
        lines = [title]
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                lines.append(f"  {name} = {metric.value:,}")
            elif isinstance(metric, Gauge):
                lines.append(
                    f"  {name} = {metric.value:,.6g} (max {metric.max_value:,.6g})"
                )
            else:
                if metric.total:
                    detail = (
                        f"count {metric.total:,}, mean {metric.mean:,.0f}, "
                        f"p50 {metric.percentile(50):,.0f}, "
                        f"p95 {metric.percentile(95):,.0f}, "
                        f"p99 {metric.percentile(99):,.0f}"
                    )
                else:
                    detail = "count 0"
                lines.append(f"  {name} = histogram({detail})")
        return "\n".join(lines)
