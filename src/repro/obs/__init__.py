"""Observability: command-lifecycle tracing + a metrics registry.

``repro.obs`` makes the simulated ZNS stack explainable instead of a
black box: a :class:`Tracer` records span-style lifecycle events for
every NVMe command (queue wait → controller service → NAND/die occupancy
→ buffer admission → firmware management work → completion) in simulated
nanoseconds, and a :class:`MetricsRegistry` aggregates counters, gauges,
and fixed-bucket histograms published by every layer.

Both are injectable and default to off (:data:`NULL_TRACER`), so
disabled runs produce byte-identical experiment output. See
:mod:`repro.obs.profile` for the per-layer time-breakdown reports and
the ``python -m repro profile`` command.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    resolve_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "resolve_tracer",
]
