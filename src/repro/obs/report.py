"""Run directories and the ``repro report`` HTML dashboard.

``repro run --telemetry`` persists each invocation as a *run
directory* — three JSON artifacts with distinct determinism contracts:

* ``run.json`` — the manifest: what was asked for and what the engine
  did. Carries wall-clock figures, so it is **not** byte-stable across
  invocations.
* ``results.json`` — the experiment tables (columns + rows + notes),
  exactly the data behind the ASCII tables ``repro run`` prints.
* ``telemetry.json`` — the merged windowed timeseries from
  :mod:`repro.obs.telemetry`, written in canonical form (sorted keys,
  no whitespace). This file is the determinism witness: the same run
  at any ``--jobs`` must produce a byte-identical ``telemetry.json``.

``repro report <run_dir>`` folds the three into one self-contained
HTML page: no external scripts, stylesheets, fonts, or images — tables
plus inline SVG sparklines, styled with CSS custom properties that
carry a light and a dark theme (``prefers-color-scheme`` plus a
``data-theme`` override). Colors follow the metric family, not the
column: throughput counts are blue, latency percentiles orange, fault
activity red, occupancy/census aqua, GC violet, per-tenant accounting
magenta. Sparkline tiles are
single-series, so they carry no legend; the column name and a
min/mean/max/last readout in ink (never series color) identify them.
"""

from __future__ import annotations

import html
import json
import os
from typing import Any, Optional

__all__ = ["RUN_SCHEMA", "write_run", "load_run", "render_html"]

#: Bump when the run-directory layout changes.
RUN_SCHEMA = 1

_RUN_FILE = "run.json"
_RESULTS_FILE = "results.json"
_TELEMETRY_FILE = "telemetry.json"


# --------------------------------------------------------------------- writing
def write_run(run_dir: str, results: dict[str, Any], report: Any,
              manifest: Optional[dict[str, Any]] = None) -> list[str]:
    """Persist a run directory; returns the paths written.

    ``results`` maps experiment id to
    :class:`~repro.core.results.ExperimentResult`; ``report`` is the
    engine's :class:`~repro.exec.engine.ExecutionReport`. ``manifest``
    carries caller context (ids, seed, fault plan, interval) and may
    include wall-clock values — only ``telemetry.json`` promises
    byte-stability, and it is encoded canonically to make the promise
    checkable with a plain file compare.
    """
    os.makedirs(run_dir, exist_ok=True)
    written = []

    doc = {"schema": RUN_SCHEMA}
    doc.update(manifest or {})
    doc["exec"] = {
        "jobs": report.jobs,
        "points": len(report.points),
        "executed": report.executed,
        "cache_hits": report.cache_hits,
        "failed": report.failed,
        "wall_s": round(report.wall_s, 3),
        "events": report.events,
    }
    path = os.path.join(run_dir, _RUN_FILE)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    written.append(path)

    tables = {
        exp_id: {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "columns": result.columns,
            "rows": result.rows,
            "notes": result.notes,
        }
        for exp_id, result in results.items()
    }
    path = os.path.join(run_dir, _RESULTS_FILE)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(tables, fh, indent=2, sort_keys=True)
        fh.write("\n")
    written.append(path)

    telemetry = getattr(report, "telemetry", None)
    if telemetry:
        doc = {"schema": RUN_SCHEMA, "experiments": telemetry}
        path = os.path.join(run_dir, _TELEMETRY_FILE)
        with open(path, "w", encoding="utf-8") as fh:
            # Canonical encoding: this file is compared byte-for-byte
            # across --jobs counts by tests and CI.
            fh.write(json.dumps(doc, sort_keys=True, separators=(",", ":")))
            fh.write("\n")
        written.append(path)
    return written


def load_run(run_dir: str) -> dict[str, Any]:
    """Read a run directory back; telemetry is optional."""
    def read(name: str, required: bool):
        path = os.path.join(run_dir, name)
        if not os.path.exists(path):
            if required:
                raise FileNotFoundError(
                    f"{run_dir!r} is not a run directory: missing {name}"
                )
            return {}
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)

    manifest = read(_RUN_FILE, required=True)
    if manifest.get("schema") != RUN_SCHEMA:
        raise ValueError(
            f"{run_dir}/{_RUN_FILE} has schema {manifest.get('schema')!r}, "
            f"expected {RUN_SCHEMA}"
        )
    return {
        "name": os.path.basename(os.path.abspath(run_dir)),
        "manifest": manifest,
        "results": read(_RESULTS_FILE, required=True),
        "telemetry": read(_TELEMETRY_FILE, required=False).get(
            "experiments", {}
        ),
    }


# ------------------------------------------------------------------ rendering
#: Sparkline tile cap per telemetry segment; the rest are counted in a
#: footnote rather than silently dropped.
_MAX_TILES = 18

_SPARK_W = 150
_SPARK_H = 36


def _family_of(name: str) -> Optional[str]:
    """Metric family → color class; None means "do not chart"."""
    if name.startswith("faults."):
        return "fault"
    if name.startswith("gc."):
        return "gc"
    if name.startswith("tenant."):
        # Per-tenant counters/latencies (repro.tenancy): one family —
        # including the tenant latency percentiles — so a fleet run's
        # dashboard separates tenants from device internals at a glance.
        return "tenant"
    if name.endswith((".p50", ".p95", ".p99")):
        return "lat"
    if (name.startswith(("zones.", "wbuf.", "ftl."))
            or name in ("ctrl.queue", "fw.debt_ns")):
        return "occ"
    if name.endswith(".count") or name.endswith(".busy_frac"):
        return "thru"
    return "thru" if name.startswith("host.") else None


#: Render priority within a segment (latency and throughput first — the
#: paper's headline axes — then faults, GC, occupancy, and per-tenant
#: accounting).
_FAMILY_ORDER = {"lat": 0, "thru": 1, "fault": 2, "gc": 3, "occ": 4,
                 "tenant": 5}


def _select_columns(columns: dict[str, list]) -> tuple[list, int]:
    """Pick and order the sparkline-worthy columns.

    p50/p99 are dropped when a p95 exists for the same histogram (the
    table in ``results.json`` has the full distribution); per-die busy
    fractions collapse into one mean-across-dies series. Returns
    ``(tiles, skipped)`` where each tile is ``(label, family, values)``.
    """
    die_cols = sorted(
        name for name in columns
        if name.startswith("nand.die") and name.endswith(".busy_frac")
    )
    p95_bases = {name[:-4] for name in columns if name.endswith(".p95")}
    picked = []
    for name, values in columns.items():
        if name in die_cols:
            continue
        if name.endswith((".p50", ".p99")) and name[:-4] in p95_bases:
            continue
        family = _family_of(name)
        if family is not None:
            picked.append((name, family, values))
    if die_cols:
        rows = len(columns[die_cols[0]])
        mean = [
            round(sum(columns[c][i] or 0.0 for c in die_cols) / len(die_cols), 6)
            for i in range(rows)
        ]
        picked.append(("nand.busy_frac (die mean)", "thru", mean))
    picked.sort(key=lambda t: (_FAMILY_ORDER[t[1]], t[0]))
    return picked[:_MAX_TILES], max(0, len(picked) - _MAX_TILES)


def _fmt(value: Any) -> str:
    """Compact numeric label for tile readouts."""
    if value is None:
        return "—"
    if isinstance(value, float) and not value.is_integer():
        if abs(value) < 1:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:,.1f}"
    value = int(value)
    if abs(value) >= 10_000_000:
        return f"{value / 1e6:,.0f}M"
    if abs(value) >= 100_000:
        return f"{value / 1e3:,.0f}k"
    return f"{value:,}"


def _sparkline(values: list, windows: list[int], family: str) -> str:
    """Inline SVG sparkline; ``None`` gaps break the line."""
    pts = [(w, v) for w, v in zip(windows, values) if v is not None]
    if not pts:
        return ""
    x_lo, x_hi = windows[0], windows[-1]
    x_span = (x_hi - x_lo) or 1
    y_vals = [v for _, v in pts]
    y_lo, y_hi = min(y_vals), max(y_vals)
    y_span = (y_hi - y_lo) or 1
    pad = 2

    def xy(w, v):
        x = pad + (w - x_lo) / x_span * (_SPARK_W - 2 * pad)
        y = (_SPARK_H - pad) - (v - y_lo) / y_span * (_SPARK_H - 2 * pad)
        return f"{x:.1f},{y:.1f}"

    # Break the polyline wherever a window produced no sample.
    runs, run = [], []
    by_window = dict(pts)
    for w in windows:
        if w in by_window and by_window[w] is not None:
            run.append((w, by_window[w]))
        elif run:
            runs.append(run)
            run = []
    if run:
        runs.append(run)
    parts = []
    for run in runs:
        coords = " ".join(xy(w, v) for w, v in run)
        if len(run) == 1:
            x, y = coords.split(",")
            parts.append(
                f'<circle cx="{x}" cy="{y}" r="2" class="s-{family}f"/>'
            )
        else:
            parts.append(
                f'<polyline points="{coords}" class="s-{family}" '
                f'fill="none" stroke-width="2" stroke-linejoin="round" '
                f'stroke-linecap="round"/>'
            )
    mean = sum(y_vals) / len(y_vals)
    title = (f"min {_fmt(y_lo)} · mean {_fmt(round(mean, 3))} · "
             f"max {_fmt(y_hi)} · last {_fmt(y_vals[-1])}")
    return (
        f'<svg viewBox="0 0 {_SPARK_W} {_SPARK_H}" width="{_SPARK_W}" '
        f'height="{_SPARK_H}" role="img"><title>{html.escape(title)}</title>'
        f'{"".join(parts)}</svg>'
    )


def _tile(name: str, family: str, values: list, windows: list[int]) -> str:
    numeric = [v for v in values if v is not None]
    if not numeric:
        return ""
    stats = (f"min {_fmt(min(numeric))} · max {_fmt(max(numeric))} · "
             f"last {_fmt(numeric[-1])}")
    return (
        '<div class="tile">'
        f'<div class="tile-name">{html.escape(name)}</div>'
        f'{_sparkline(values, windows, family)}'
        f'<div class="tile-stats">{stats}</div>'
        "</div>"
    )


def _segment_html(segment: dict[str, Any]) -> str:
    windows = segment["windows"]
    if not windows:
        return ""
    tiles, skipped = _select_columns(segment["columns"])
    span_ms = segment["end_ns"] / 1e6
    interval_us = segment["interval_ns"] / 1e3
    head = (
        f'<div class="seg-head"><span class="seg-point">'
        f'{html.escape(str(segment.get("point", "")))}</span>'
        f' <span class="seg-dev">{html.escape(segment["device"])}'
        f' · {segment["rows"]} windows × {interval_us:g} µs'
        f' · {span_ms:.2f} ms simulated</span></div>'
    )
    body = "".join(
        _tile(name, family, values, windows)
        for name, family, values in tiles
    )
    note = (f'<div class="seg-note">{skipped} more columns in '
            f"telemetry.json</div>" if skipped else "")
    return f'<div class="segment">{head}<div class="tiles">{body}</div>{note}</div>'


def _table_html(table: dict[str, Any]) -> str:
    columns = table["columns"]
    head = "".join(f"<th>{html.escape(str(c))}</th>" for c in columns)
    rows = []
    for row in table["rows"]:
        cells = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                value = f"{value:g}"
            klass = "" if isinstance(value, str) else ' class="num"'
            cells.append(f"<td{klass}>{html.escape(str(value))}</td>")
        rows.append("<tr>" + "".join(cells) + "</tr>")
    notes = "".join(
        f'<div class="note">{html.escape(note)}</div>'
        for note in table.get("notes", [])
    )
    return (
        f'<table><thead><tr>{head}</tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table>{notes}'
    )


_CSS = """
:root {
  --surface: #fcfcfb; --card: #ffffff;
  --ink: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9;
  --thru: #2a78d6; --lat: #eb6834; --fault: #e34948;
  --occ: #1baf7a; --gc: #4a3aa7; --tenant: #b3437e;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --card: #222221;
    --ink: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a;
    --thru: #3987e5; --lat: #d95926; --fault: #e66767;
    --occ: #199e70; --gc: #9085e9; --tenant: #d066a1;
  }
}
[data-theme="light"] {
  --surface: #fcfcfb; --card: #ffffff;
  --ink: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9;
  --thru: #2a78d6; --lat: #eb6834; --fault: #e34948;
  --occ: #1baf7a; --gc: #4a3aa7; --tenant: #b3437e;
}
[data-theme="dark"] {
  --surface: #1a1a19; --card: #222221;
  --ink: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
  --grid: #2c2c2a;
  --thru: #3987e5; --lat: #d95926; --fault: #e66767;
  --occ: #199e70; --gc: #9085e9; --tenant: #d066a1;
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--surface); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; }
.meta { color: var(--ink-2); margin-bottom: 16px; }
.meta b { color: var(--ink); font-weight: 600; }
table { border-collapse: collapse; margin: 8px 0; }
th, td { padding: 4px 10px; border-bottom: 1px solid var(--grid); }
th { text-align: left; color: var(--ink-2); font-weight: 600; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.note { color: var(--ink-3); font-size: 12px; margin: 2px 0; }
.segment { margin: 12px 0 18px; }
.seg-head { margin-bottom: 6px; }
.seg-point { font-weight: 600; }
.seg-dev { color: var(--ink-2); font-size: 12px; }
.seg-note { color: var(--ink-3); font-size: 12px; margin-top: 4px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; }
.tile {
  background: var(--card); border: 1px solid var(--grid);
  border-radius: 6px; padding: 8px 10px; width: 178px;
}
.tile-name { color: var(--ink-2); font-size: 11px; margin-bottom: 2px;
  overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
.tile-stats { color: var(--ink-3); font-size: 11px; margin-top: 2px;
  font-variant-numeric: tabular-nums; }
.s-thru { stroke: var(--thru); } .s-thruf { fill: var(--thru); }
.s-lat { stroke: var(--lat); }   .s-latf { fill: var(--lat); }
.s-fault { stroke: var(--fault); } .s-faultf { fill: var(--fault); }
.s-occ { stroke: var(--occ); }   .s-occf { fill: var(--occ); }
.s-gc { stroke: var(--gc); }     .s-gcf { fill: var(--gc); }
.s-tenant { stroke: var(--tenant); } .s-tenantf { fill: var(--tenant); }
footer { margin-top: 28px; color: var(--ink-3); font-size: 12px; }
"""


def render_html(run: dict[str, Any]) -> str:
    """One self-contained HTML page for a loaded run directory."""
    manifest = run["manifest"]
    results = run["results"]
    telemetry = run["telemetry"]
    exec_info = manifest.get("exec", {})

    bits = []
    for label, key in (("experiments", "ids"), ("seed", "seed"),
                       ("faults", "faults"), ("interval", "interval_us")):
        value = manifest.get(key)
        if value not in (None, [], ""):
            if isinstance(value, list):
                value = ", ".join(str(v) for v in value)
            if key == "interval_us":
                value = f"{value:g} µs"
            bits.append(f"<b>{html.escape(label)}</b> {html.escape(str(value))}")
    if exec_info:
        bits.append(
            f"<b>points</b> {exec_info.get('points', '?')} "
            f"({exec_info.get('cache_hits', 0)} cached, "
            f"jobs={exec_info.get('jobs', '?')}, "
            f"{exec_info.get('wall_s', 0.0):g}s wall)"
        )
    created = manifest.get("created")
    if created:
        bits.append(f"<b>created</b> {html.escape(str(created))}")

    sections = []
    for exp_id in sorted(set(results) | set(telemetry)):
        table = results.get(exp_id)
        title = table["title"] if table else exp_id
        parts = [f"<h2>{html.escape(exp_id)} — {html.escape(title)}</h2>"]
        if table:
            parts.append(_table_html(table))
        for segment in telemetry.get(exp_id, []):
            parts.append(_segment_html(segment))
        sections.append("".join(parts))

    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>repro run — {html.escape(run.get('name', 'report'))}</title>\n"
        f"<style>{_CSS}</style></head>\n<body>\n"
        f"<h1>repro run report — {html.escape(run.get('name', ''))}</h1>\n"
        f'<div class="meta">{" · ".join(bits)}</div>\n'
        + "\n".join(sections)
        + "\n<footer>Self-contained report: tables from results.json, "
          "sparklines from telemetry.json windowed deltas. Colors follow "
          "the metric family — throughput/utilization blue, latency "
          "orange, faults red, occupancy aqua, GC violet.</footer>\n"
        "</body></html>\n"
    )
