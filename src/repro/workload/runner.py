"""Workload execution: turning a JobSpec into simulated I/O and metrics.

A runner spawns ``numjobs × iodepth`` closed-loop submission slots, each
repeatedly asking its thread's access pattern for the next command,
pacing against the job's rate limit, submitting through the storage
stack, and recording completion latency and throughput after the ramp
window — the structure of the paper's fio/SPDK benchmarks.

Zone resets needed by long write/append runs (host-managed GC) are issued
directly to the device — the paper's benchmarks do the same via
nvme-cli/SPDK rather than through the measured I/O path — and their
latencies are recorded separately (used by Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from ..hostif.commands import Command, Opcode, ZoneAction, recycle_completion
from ..hostif.status import Status
from ..obs.metrics import DEFAULT_LATENCY_BUCKETS_NS
from ..sim.engine import Event, NS_PER_S, Simulator, us
from .job import IoKind, JobSpec, Pattern
from .patterns import (
    BACKOFF,
    RandomReadPattern,
    RangePattern,
    ZoneAppendCursor,
    ZoneWriteCursor,
)
from .ratelimit import RatePacer
from .stats import LatencyStats, TimeSeries

__all__ = ["JobResult", "JobRunner", "ResetSweep"]

#: Default bucketing of throughput-over-time series.
DEFAULT_TS_INTERVAL_NS = 50_000_000  # 50 ms


@dataclass
class JobResult:
    """Measured outcome of one job (post-ramp window only)."""

    job: JobSpec
    latency: LatencyStats = field(default_factory=LatencyStats)
    reset_latency: LatencyStats = field(default_factory=LatencyStats)
    timeseries: TimeSeries = field(default_factory=lambda: TimeSeries(DEFAULT_TS_INTERVAL_NS))
    ops: int = 0
    bytes: int = 0
    resets: int = 0
    errors: dict[Status, int] = field(default_factory=dict)
    measured_ns: int = 0
    #: Degraded-mode accounting (fault-injection runs only): host-side
    #: command-timeout aborts and bounded retries of retryable statuses.
    timeouts: int = 0
    retries: int = 0

    @property
    def iops(self) -> float:
        if self.measured_ns == 0:
            return 0.0
        return self.ops * NS_PER_S / self.measured_ns

    @property
    def kiops(self) -> float:
        return self.iops / 1_000

    @property
    def bandwidth_mibs(self) -> float:
        if self.measured_ns == 0:
            return 0.0
        return self.bytes * NS_PER_S / self.measured_ns / (1024 * 1024)


class JobRunner:
    """Runs one JobSpec within a host session.

    The runner no longer assumes it owns the device: it executes inside
    a session — either an explicit :class:`~repro.tenancy.Tenant`
    (``tenant=``), whose stack, labels, and accounting it uses, or the
    anonymous single-tenant session implied by a ``(device, stack)``
    pair (the historical calling convention, byte-identical to the
    pre-tenancy runner). Multiple runners in tenant contexts can share
    one device concurrently; completions, errors, and SLO violations
    are attributed to the issuing tenant.
    """

    def __init__(self, device=None, stack=None, job: JobSpec = None,
                 ts_interval_ns: int = DEFAULT_TS_INTERVAL_NS,
                 tenant=None):
        if tenant is not None:
            device = device if device is not None else tenant.device
            stack = stack if stack is not None else tenant.stack
        if device is None or stack is None or job is None:
            raise ValueError(
                "JobRunner needs a job plus either a tenant session or "
                "an explicit device/stack pair"
            )
        self.tenant = tenant
        self.device = device
        self.stack = stack
        self.job = job
        self.sim: Simulator = device.sim
        self.result = JobResult(job=job, timeseries=TimeSeries(ts_interval_ns))
        self._pacer = (
            RatePacer(self.sim, job.rate_limit_bps)
            if job.rate_limit_bps is not None
            else None
        )
        self._resetting: set[int] = set()
        self._started = False
        # Publish per-job measured counters into the device's registry so
        # ``--metrics`` / ``repro profile`` see workload-level aggregates
        # alongside the device-internal ones. Only when observability was
        # requested — default runs must not pay per-op histogram updates.
        metrics = (
            getattr(device, "metrics", None)
            if getattr(device, "observing", False)
            else None
        )
        if metrics is not None:
            prefix = (
                f"tenant.{tenant.name}.{job.name}" if tenant is not None
                else f"workload.{job.name}"
            )
            self._ops_counter = metrics.counter(f"{prefix}.ops")
            self._bytes_counter = metrics.counter(f"{prefix}.bytes")
            self._latency_hist = metrics.histogram(
                f"{prefix}.latency_ns", DEFAULT_LATENCY_BUCKETS_NS
            )
        else:
            self._ops_counter = None
            self._bytes_counter = None
            self._latency_hist = None
        # Host-managed-GC visibility on telemetry timelines: zone resets
        # issued by this job, windowed by the sampler. Registered only
        # when a sampler is attached — adding it to plain ``--metrics``
        # runs would change their (pinned, pre-telemetry) table output.
        self._reset_counter = (
            metrics.counter(f"{prefix}.resets")
            if metrics is not None and getattr(device, "telemetry", None) is not None
            else None
        )
        # Host-side resilience policy (DESIGN.md §12): armed only when the
        # device runs with fault injection, so fault-free runs keep the
        # exact event sequence (and RNG draws) of the plain submit loop.
        injector = getattr(device, "faults", None)
        self._fault_plan = injector.plan if injector is not None else None
        # The submission path is the session's: a tenant stamps its
        # label and routes through its own stack instance; the anonymous
        # session is the bare stack (the historical fast path).
        self._submit = (
            tenant.submit if tenant is not None else self.stack.submit
        )
        always_metrics = getattr(device, "metrics", None)
        if self._fault_plan is not None and always_metrics is not None:
            self._timeout_counter = always_metrics.counter("host.timeouts")
            self._retry_counter = always_metrics.counter("host.retries")
        else:
            self._timeout_counter = None
            self._retry_counter = None

    # -- orchestration ------------------------------------------------------
    def start(self) -> Event:
        """Launch all slots; the returned event fires when the job ends."""
        if self._started:
            raise RuntimeError("runner already started")
        self._started = True
        self._start_ns = self.sim.now
        self._end_ns = self.sim.now + self.job.runtime_ns
        self._ramp_end_ns = self.sim.now + self.job.ramp_ns
        slots = []
        for thread in range(self.job.numjobs):
            pattern = self._build_pattern(thread)
            for _ in range(self.job.iodepth):
                slots.append(self.sim.process(self._slot(pattern)))
        done = self.sim.all_of(slots)
        done.add_callback(lambda _e: self._finalize())
        return done

    def run(self) -> JobResult:
        """Start and run the simulation until the job completes."""
        self.sim.run(until=self.start())
        return self.result

    def _finalize(self) -> None:
        self.result.measured_ns = max(0, self.sim.now - self._ramp_end_ns)

    # -- pattern construction --------------------------------------------------
    def _build_pattern(self, thread: int):
        job = self.job
        nlb = self.device.namespace.lbas(job.block_size)
        rng = np.random.default_rng((job.seed, thread))
        zones = job.zones_for_thread(thread)
        if zones is None:
            if job.address_range is None:
                raise ValueError(
                    f"job {job.name!r} targets no zones and no address range"
                )
            opcode = Opcode.READ if job.op == IoKind.READ else Opcode.WRITE
            if job.op == IoKind.APPEND:
                raise ValueError("append requires zones")
            return RangePattern(
                opcode, job.address_range, nlb,
                random=(job.pattern == Pattern.RANDOM), rng=rng,
            )
        if job.op == IoKind.READ:
            return RandomReadPattern(self.device, zones, nlb, rng)
        if job.op == IoKind.WRITE:
            return ZoneWriteCursor(self.device, zones, nlb, job.reset_when_full)
        return ZoneAppendCursor(
            self.device, zones, nlb, job.reset_when_full,
            rng=rng if job.pattern == Pattern.RANDOM or len(zones) > 1 else None,
        )

    # -- the submission loop ----------------------------------------------------
    def _slot(self, pattern) -> Generator:
        job = self.job
        sim = self.sim
        end_ns = self._end_ns
        next_target = pattern.next_target
        submit = self._submit
        is_append = isinstance(pattern, ZoneAppendCursor)
        while sim.now < end_ns:
            command, reset_zone = next_target()
            if reset_zone is not None:
                yield from self._reset_zone(pattern, reset_zone)
                continue
            if command is BACKOFF:
                # All target zones transiently blocked by in-flight work;
                # wait out a completion window and retry instead of
                # retiring the slot (which would shrink concurrency).
                yield sim.timeout(us(10))
                continue
            if command is None:
                return
            if self._pacer is not None:
                delay = self._pacer.delay_for(job.block_size)
                if delay:
                    yield sim.timeout(delay)
                if sim.now >= end_ns:
                    return
            if self._fault_plan is None:
                completion = yield submit(command)
            else:
                completion = yield from self._submit_resilient(
                    command, pattern, is_append)
                if completion is None:
                    continue  # timed out; accounted inside
            if is_append:
                pattern.completed(command)
            self._record(completion)
            # Last touch of this command/completion pair: return both to
            # the freelists if nothing else (stack merge bookkeeping, a
            # retained error report) still references them. The loop
            # variables are rebound before the pool can hand them out
            # again — see the recycle_completion caller contract.
            recycle_completion(completion)

    def _submit_resilient(self, command, pattern, is_append: bool):
        """Fault-mode submit: command timeout + bounded retry w/ backoff.

        Returns the final completion, or ``None`` when the command timed
        out (the abort is counted as ``COMMAND_ABORTED``; the in-flight
        device work still finishes, and for appends the cursor
        reservation is released when the straggler eventually lands).
        Each retry restamps ``submitted_at`` — the recorded latency is
        the final attempt's, while the backoff delay shows up as lost
        throughput, which is the degraded-mode signal we want.
        """
        plan = self._fault_plan
        sim = self.sim
        attempts = 0
        while True:
            target = self._submit(command)
            if plan.command_timeout_ns is not None:
                timer = sim.timeout(plan.command_timeout_ns)
                yield sim.any_of([target, timer])
                if not target.triggered:
                    self.result.timeouts += 1
                    errors = self.result.errors
                    aborted = Status.COMMAND_ABORTED
                    errors[aborted] = errors.get(aborted, 0) + 1
                    if self.tenant is not None:
                        self.tenant.record_error(aborted, command.slba)
                    if self._timeout_counter is not None:
                        self._timeout_counter.inc()
                    # The device cannot revoke in-flight NAND work, so the
                    # abort drains the straggler before the slot moves on:
                    # reusing the zone/slot immediately would violate the
                    # host contract (e.g. one in-flight write per zone).
                    # The command is still *lost* to the host — no latency
                    # sample, an ABORTED error, stalled throughput.
                    yield target
                    if is_append:
                        pattern.completed(command)
                    return None
                completion = target.value
            else:
                completion = yield target
            if (completion.ok or not completion.status.retryable
                    or attempts >= plan.max_retries):
                return completion
            attempts += 1
            self.result.retries += 1
            if self._retry_counter is not None:
                self._retry_counter.inc()
            yield sim.timeout(plan.retry_backoff_ns << (attempts - 1))
            command.submitted_at = -1

    def _reset_zone(self, pattern, zone_id: int) -> Generator:
        if zone_id in self._resetting:
            # Another slot is already resetting this zone; back off.
            yield self.sim.timeout(us(10))
            return
        self._resetting.add(zone_id)
        try:
            zslba = self.device.zones.zones[zone_id].zslba
            command = Command(Opcode.ZONE_MGMT, slba=zslba, action=ZoneAction.RESET,
                              tenant=self.tenant.name if self.tenant else None)
            completion = yield self.device.submit(command)
            if completion.ok:
                self.result.resets += 1
                if self._reset_counter is not None:
                    self._reset_counter.inc()
                measured = self.sim.now >= self._ramp_end_ns
                if measured:
                    self.result.reset_latency.record(completion.latency_ns)
                if self.tenant is not None:
                    self.tenant.record_reset(
                        completion.latency_ns if measured else None)
                # Only a *successful* reset rewinds the write pointer;
                # clearing the cursor's reservations for a zone that was
                # never reset would let appends overshoot its capacity.
                if isinstance(pattern, ZoneAppendCursor):
                    pattern.reset_done(zone_id)
            else:
                errors = self.result.errors
                errors[completion.status] = errors.get(completion.status, 0) + 1
                if self.tenant is not None:
                    self.tenant.record_error(completion.status, zslba)
        finally:
            self._resetting.discard(zone_id)

    def _record(self, completion) -> None:
        if not completion.ok:
            errors = self.result.errors
            errors[completion.status] = errors.get(completion.status, 0) + 1
            if self.tenant is not None:
                self.tenant.record_error(completion.status,
                                         completion.command.slba)
            return
        if self.sim.now < self._ramp_end_ns:
            return
        self.result.ops += 1
        self.result.bytes += self.job.block_size
        self.result.latency.record(completion.latency_ns)
        self.result.timeseries.record(self.sim.now, self.job.block_size)
        if self.tenant is not None:
            self.tenant.record(completion, self.job.block_size)
        if self._ops_counter is not None:
            self._ops_counter.inc()
            self._bytes_counter.inc(self.job.block_size)
            self._latency_hist.observe(completion.latency_ns)


class ResetSweep:
    """A dedicated reset thread: resets pre-filled zones back to back.

    Used by the §III-E occupancy sweeps and the §III-G interference
    benchmark ("one thread solely for issuing reset operations").
    """

    def __init__(self, device, zone_ids):
        self.device = device
        self.sim: Simulator = device.sim
        self.zone_ids = list(zone_ids)
        self.latency = LatencyStats()
        #: Failed resets, keyed by status. A reset can legitimately fail
        #: under fault injection (e.g. the zone was retired to OFFLINE),
        #: so failures are recorded rather than raised — the sweep keeps
        #: going and the caller inspects ``errors`` afterwards.
        self.errors: dict[Status, int] = {}
        #: The same failures with zone attribution: zone id -> status ->
        #: count. Multi-tenant SLO reports resolve the zone back to its
        #: owning tenant, so a failed reset names the offending tenant
        #: instead of disappearing into an aggregate.
        self.errors_by_zone: dict[int, dict[Status, int]] = {}

    def start(self) -> Event:
        return self.sim.process(self._run())

    def run(self) -> LatencyStats:
        self.sim.run(until=self.start())
        return self.latency

    def _run(self) -> Generator:
        for zone_id in self.zone_ids:
            zslba = self.device.zones.zones[zone_id].zslba
            command = Command(Opcode.ZONE_MGMT, slba=zslba, action=ZoneAction.RESET)
            completion = yield self.device.submit(command)
            if not completion.ok:
                self.errors[completion.status] = (
                    self.errors.get(completion.status, 0) + 1
                )
                per_zone = self.errors_by_zone.setdefault(zone_id, {})
                per_zone[completion.status] = (
                    per_zone.get(completion.status, 0) + 1
                )
                continue
            self.latency.record(completion.latency_ns)
