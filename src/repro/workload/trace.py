"""Trace-driven workloads: record, save, load, and replay I/O traces.

The SSD-modelling literature the paper surveys (§V-B) validates models
against *trace-based workloads*; this module gives the simulated devices
the same capability:

* :class:`TraceRecord` — one timestamped command,
* :class:`Trace` — an ordered collection with CSV (de)serialization and
  a synthetic generator for common shapes,
* :class:`TraceReplayer` — open-loop replay: each record is submitted at
  its recorded timestamp (late arrivals submit immediately), measuring
  per-record latency and on-time statistics.

Replay is open-loop (arrival-driven) in contrast to the closed-loop
:class:`repro.workload.runner.JobRunner`, making it the right tool for
studying latency under a *fixed* offered load.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from ..hostif.commands import Command, Opcode
from ..sim.engine import NS_PER_S, Event, Simulator
from .stats import LatencyStats

__all__ = ["TraceRecord", "Trace", "TraceReplayer", "synthetic_trace"]

_OPCODES = {op.value: op for op in Opcode}


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: submit ``opcode`` at ``timestamp_ns``."""

    timestamp_ns: int
    opcode: Opcode
    slba: int
    nlb: int

    def __post_init__(self) -> None:
        if self.timestamp_ns < 0:
            raise ValueError(f"negative timestamp {self.timestamp_ns}")
        if self.opcode not in (Opcode.READ, Opcode.WRITE, Opcode.APPEND):
            raise ValueError(f"traces carry I/O commands only, not {self.opcode}")
        if self.nlb <= 0 or self.slba < 0:
            raise ValueError("invalid slba/nlb")

    def to_command(self) -> Command:
        return Command(self.opcode, slba=self.slba, nlb=self.nlb)


class Trace:
    """A time-ordered sequence of trace records."""

    def __init__(self, records: Iterable[TraceRecord] = ()):
        self.records = sorted(records, key=lambda r: r.timestamp_ns)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def duration_ns(self) -> int:
        return self.records[-1].timestamp_ns if self.records else 0

    def offered_iops(self) -> float:
        """Mean offered arrival rate over the trace duration."""
        if len(self.records) < 2 or self.duration_ns == 0:
            return 0.0
        return len(self.records) * NS_PER_S / self.duration_ns

    # -- CSV (de)serialization ------------------------------------------------
    CSV_HEADER = ("timestamp_ns", "opcode", "slba", "nlb")

    def to_csv(self) -> str:
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(self.CSV_HEADER)
        for r in self.records:
            writer.writerow((r.timestamp_ns, r.opcode.value, r.slba, r.nlb))
        return out.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "Trace":
        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        if header is None or tuple(header) != cls.CSV_HEADER:
            raise ValueError(f"bad trace header {header!r}; want {cls.CSV_HEADER}")
        records = []
        for row in reader:
            if not row:
                continue
            timestamp, opcode, slba, nlb = row
            if opcode not in _OPCODES:
                raise ValueError(f"unknown opcode {opcode!r} in trace")
            records.append(TraceRecord(int(timestamp), _OPCODES[opcode],
                                       int(slba), int(nlb)))
        return cls(records)

    def save(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_csv())

    @classmethod
    def load(cls, path) -> "Trace":
        with open(path) as handle:
            return cls.from_csv(handle.read())


def synthetic_trace(
    duration_ns: int,
    iops: float,
    opcode: Opcode = Opcode.READ,
    nlb: int = 1,
    address_range: tuple[int, int] = (0, 1 << 20),
    pattern: str = "random",
    seed: int = 1234,
    arrival: str = "poisson",
) -> Trace:
    """Generate a synthetic trace (Poisson or uniform arrivals)."""
    if duration_ns <= 0 or iops <= 0:
        raise ValueError("duration and iops must be positive")
    if pattern not in ("random", "seq"):
        raise ValueError(f"pattern must be random|seq, got {pattern!r}")
    if arrival not in ("poisson", "uniform"):
        raise ValueError(f"arrival must be poisson|uniform, got {arrival!r}")
    rng = np.random.default_rng(seed)
    count = max(1, round(iops * duration_ns / NS_PER_S))
    if arrival == "poisson":
        gaps = rng.exponential(NS_PER_S / iops, count)
        stamps = np.cumsum(gaps).astype(np.int64)
        stamps = stamps[stamps < duration_ns]
        if len(stamps) == 0:
            stamps = np.asarray([0], dtype=np.int64)
    else:
        stamps = np.linspace(0, duration_ns, count, endpoint=False).astype(np.int64)
    start, end = address_range
    slots = (end - start) // nlb
    if slots <= 0:
        raise ValueError("address range smaller than one request")
    records = []
    cursor = 0
    for stamp in stamps:
        if pattern == "random":
            slba = start + int(rng.integers(0, slots)) * nlb
        else:
            slba = start + (cursor % slots) * nlb
            cursor += 1
        records.append(TraceRecord(int(stamp), opcode, slba, nlb))
    return Trace(records)


class TraceReplayer:
    """Open-loop replay of a trace against a stack/device."""

    def __init__(self, stack, trace: Trace, max_outstanding: int = 1024):
        if max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        self.stack = stack
        self.sim: Simulator = stack.sim
        self.trace = trace
        self.max_outstanding = max_outstanding
        self.latency = LatencyStats()
        self.completed = 0
        self.errors = 0
        self.late_submissions = 0

    def start(self) -> Event:
        return self.sim.process(self._run(), name="trace-replay")

    def run(self) -> "TraceReplayer":
        self.sim.run(until=self.start())
        return self

    def _run(self):
        start = self.sim.now
        inflight: list = []
        for record in self.trace:
            due = start + record.timestamp_ns
            if self.sim.now < due:
                yield self.sim.timeout(due - self.sim.now)
            elif self.sim.now > due:
                self.late_submissions += 1
            inflight = [e for e in inflight if not e.processed]
            while len(inflight) >= self.max_outstanding:
                yield self.sim.any_of(inflight)
                inflight = [e for e in inflight if not e.processed]
            event = self.stack.submit(record.to_command())
            event.add_callback(self._on_complete)
            inflight.append(event)
        if inflight:
            yield self.sim.all_of(inflight)

    def _on_complete(self, event) -> None:
        completion = event.value
        if completion.ok:
            self.completed += 1
            self.latency.record(completion.latency_ns)
        else:
            self.errors += 1
