"""fio-like workload engine: jobs, patterns, pacing, metrics, runners."""

from .job import IoKind, JobSpec, Pattern
from .patterns import (
    BACKOFF,
    Backoff,
    RandomReadPattern,
    RangePattern,
    ZoneAppendCursor,
    ZoneWriteCursor,
)
from .ratelimit import RatePacer
from .runner import JobResult, JobRunner, ResetSweep
from .stats import LatencyStats, TimeSeries
from .trace import Trace, TraceRecord, TraceReplayer, synthetic_trace

__all__ = [
    "BACKOFF",
    "Backoff",
    "IoKind",
    "JobResult",
    "JobRunner",
    "JobSpec",
    "LatencyStats",
    "Pattern",
    "RandomReadPattern",
    "RangePattern",
    "RatePacer",
    "ResetSweep",
    "TimeSeries",
    "Trace",
    "TraceRecord",
    "TraceReplayer",
    "synthetic_trace",
    "ZoneAppendCursor",
    "ZoneWriteCursor",
]
