"""Job specifications — the fio-job-file equivalent.

A :class:`JobSpec` describes one workload exactly the way the paper's fio
and SPDK benchmarks are parameterized: operation, access pattern, request
(block) size, queue depth, number of jobs (threads), target zones, rate
limit, and runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = ["IoKind", "Pattern", "JobSpec"]


class IoKind:
    READ = "read"
    WRITE = "write"
    APPEND = "append"
    ALL = (READ, WRITE, APPEND)


class Pattern:
    SEQUENTIAL = "seq"
    RANDOM = "random"
    ALL = (SEQUENTIAL, RANDOM)


@dataclass
class JobSpec:
    """One workload description (fio-style)."""

    op: str
    block_size: int
    runtime_ns: int
    iodepth: int = 1
    numjobs: int = 1
    pattern: str = Pattern.SEQUENTIAL
    #: Zones this job targets (ZNS). Threads share the zone list unless
    #: ``zone_per_thread`` splits it one-zone-per-thread (inter-zone mode).
    zones: Optional[Sequence[int]] = None
    zone_per_thread: bool = False
    #: LBA range for non-zoned targets: (start_lba, end_lba).
    address_range: Optional[tuple[int, int]] = None
    #: Byte-rate cap shared by the whole job (the paper's fio rate limit).
    rate_limit_bps: Optional[float] = None
    ramp_ns: int = 0
    #: For long write/append runs: reset a filled zone before reusing it
    #: (the benchmark-managed GC of §III-F).
    reset_when_full: bool = True
    name: str = ""
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.op not in IoKind.ALL:
            raise ValueError(f"op must be one of {IoKind.ALL}, got {self.op!r}")
        if self.pattern not in Pattern.ALL:
            raise ValueError(f"pattern must be one of {Pattern.ALL}")
        if self.block_size <= 0 or self.block_size % 512 != 0:
            raise ValueError(f"block_size must be a positive multiple of 512")
        if self.iodepth < 1 or self.numjobs < 1:
            raise ValueError("iodepth and numjobs must be >= 1")
        if self.runtime_ns <= 0:
            raise ValueError("runtime_ns must be positive")
        if self.ramp_ns < 0 or self.ramp_ns >= self.runtime_ns:
            raise ValueError("ramp_ns must be in [0, runtime_ns)")
        if self.rate_limit_bps is not None and self.rate_limit_bps <= 0:
            raise ValueError("rate_limit_bps must be positive")
        if self.op == IoKind.APPEND and self.pattern == Pattern.RANDOM:
            raise ValueError("append is inherently sequential; use pattern='seq'")
        if self.zone_per_thread and self.zones is not None and (
            len(self.zones) < self.numjobs
        ):
            raise ValueError(
                f"zone_per_thread needs >= numjobs zones "
                f"({len(self.zones)} < {self.numjobs})"
            )
        if not self.name:
            self.name = f"{self.op}-{self.block_size // 1024}k-qd{self.iodepth}"

    def zones_for_thread(self, thread: int) -> Optional[Sequence[int]]:
        """The zone subset a given thread works on."""
        if self.zones is None:
            return None
        if not self.zone_per_thread:
            return self.zones
        return [self.zones[thread]]
