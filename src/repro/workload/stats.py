"""Measurement: latency distributions and throughput time series.

These mirror what the paper reports: IOPS and bandwidth (throughput),
operation latency from submission to completion with percentiles
(§III-B), and per-interval throughput over time for the Fig. 6
interference plots.
"""

from __future__ import annotations

import numpy as np

from ..sim.engine import NS_PER_S

__all__ = ["LatencyStats", "TimeSeries"]


class LatencyStats:
    """A latency sample set with percentile queries.

    Percentile/min/max/mean queries share one sorted ``np.int64`` array,
    built lazily and invalidated on every write, so repeated percentile
    reads over a large sample set sort once instead of per call.
    """

    def __init__(self) -> None:
        self._samples: list[int] = []
        self._sorted: np.ndarray | None = None

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        self._samples.append(latency_ns)
        self._sorted = None

    def record_many(self, latencies_ns) -> None:
        """Record a batch of samples (any array-like of non-negative ns).

        Float inputs are rounded (not truncated) to integer nanoseconds.
        The batch is validated fully before any sample is stored, so a
        bad batch (negative, NaN, inf) never leaves the stats partially
        mutated.
        """
        arr = np.asarray(latencies_ns)
        if arr.size == 0:
            return
        if np.issubdtype(arr.dtype, np.floating):
            if not np.isfinite(arr).all():
                raise ValueError("non-finite latency in batch (NaN or inf)")
            converted = np.rint(arr).astype(np.int64)
        elif np.issubdtype(arr.dtype, np.integer):
            converted = arr.astype(np.int64, copy=False)
        else:
            raise ValueError(f"non-numeric latencies (dtype {arr.dtype})")
        if converted.min() < 0:
            raise ValueError(f"negative latency {int(converted.min())}")
        # Convert the whole batch before touching _samples (atomicity).
        batch = [int(v) for v in converted.ravel()]
        self._samples.extend(batch)
        self._sorted = None

    def merge(self, other: "LatencyStats") -> None:
        self._samples.extend(other._samples)
        self._sorted = None

    def _sorted_samples(self) -> np.ndarray:
        self._require_samples()
        if self._sorted is None:
            self._sorted = np.sort(np.asarray(self._samples, dtype=np.int64))
        return self._sorted

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean_ns(self) -> float:
        """Mean latency; NaN when nothing completed.

        Zero samples is a legitimate outcome under fault injection (an
        aggressive profile can abort every command in the measurement
        window), so the summary statistics degrade to NaN rather than
        raising — the sweep still terminates and renders its tables.
        """
        if not self._samples:
            return float("nan")
        return float(np.mean(self._sorted_samples()))

    @property
    def min_ns(self) -> int:
        return int(self._sorted_samples()[0])

    @property
    def max_ns(self) -> int:
        return int(self._sorted_samples()[-1])

    def percentile_ns(self, p: float) -> float:
        """The p-th percentile latency (e.g. p=95 for the paper's p95).

        NaN when no samples were recorded (see :attr:`mean_ns`).
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return float("nan")
        return float(np.percentile(self._sorted_samples(), p))

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1_000

    def percentile_us(self, p: float) -> float:
        return self.percentile_ns(p) / 1_000

    def _require_samples(self) -> None:
        if not self._samples:
            raise ValueError("no latency samples recorded")

    def asarray(self) -> np.ndarray:
        return np.asarray(self._samples, dtype=np.int64)


class TimeSeries:
    """Per-interval byte/operation throughput (Fig. 6-style series)."""

    def __init__(self, interval_ns: int):
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        self.interval_ns = interval_ns
        self._bytes: dict[int, int] = {}
        self._ops: dict[int, int] = {}

    def record(self, time_ns: int, nbytes: int) -> None:
        bucket = time_ns // self.interval_ns
        self._bytes[bucket] = self._bytes.get(bucket, 0) + nbytes
        self._ops[bucket] = self._ops.get(bucket, 0) + 1

    def bandwidth_series(self) -> list[tuple[float, float]]:
        """[(interval_end_seconds, MiB/s), ...] over the recorded span."""
        if not self._bytes:
            return []
        first, last = min(self._bytes), max(self._bytes)
        scale = NS_PER_S / self.interval_ns  # intervals per second
        return [
            (
                (bucket + 1) * self.interval_ns / NS_PER_S,
                self._bytes.get(bucket, 0) * scale / (1024 * 1024),
            )
            for bucket in range(first, last + 1)
        ]

    def iops_series(self) -> list[tuple[float, float]]:
        if not self._ops:
            return []
        first, last = min(self._ops), max(self._ops)
        scale = NS_PER_S / self.interval_ns
        return [
            (
                (bucket + 1) * self.interval_ns / NS_PER_S,
                self._ops.get(bucket, 0) * scale,
            )
            for bucket in range(first, last + 1)
        ]

    @property
    def interval_count(self) -> int:
        """Intervals spanned by the recorded data (including empty ones)."""
        if not self._bytes:
            return 0
        return max(self._bytes) - min(self._bytes) + 1

    @property
    def zero_intervals(self) -> int:
        """Spanned intervals in which no I/O completed (stall intervals)."""
        if not self._bytes:
            return 0
        first, last = min(self._bytes), max(self._bytes)
        return sum(
            1 for bucket in range(first, last + 1) if bucket not in self._bytes
        )

    @property
    def idle_fraction(self) -> float:
        """Fraction of spanned intervals with zero completions.

        The Fig. 6 interference timelines care about exactly this: reset
        storms starve writes, which shows up as empty intervals in the
        victim's throughput series.
        """
        count = self.interval_count
        if count == 0:
            return 0.0
        return self.zero_intervals / count

    def bandwidth_values(self) -> np.ndarray:
        # dtype pinned so an empty series is float64, not the ambiguous
        # default of np.asarray([]).
        return np.asarray(
            [v for _, v in self.bandwidth_series()], dtype=np.float64
        )
