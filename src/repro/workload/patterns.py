"""Access-pattern generators: where the next request goes.

Generators produce :class:`repro.hostif.Command` instances for a runner
slot. They are deliberately device-aware (they consult zone capacity and
write pointers) because that is what fio's zbd mode does: sequential-zone
workloads track the write pointer, wrap to the next zone at capacity, and
reset zones before reuse.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..hostif.commands import Command, Opcode, make_command
from ..zns.spec import ZoneState

__all__ = ["BACKOFF", "Backoff", "ZoneWriteCursor", "ZoneAppendCursor",
           "RandomReadPattern", "RangePattern"]


def _dead(zone) -> bool:
    """True when fault injection retired the zone from the write path.

    In fault-free runs no zone ever reaches these states, so the check
    never alters cursor behaviour (byte-identity with the golden runs).
    """
    return zone.state in (ZoneState.READ_ONLY, ZoneState.OFFLINE)


class Backoff:
    """Sentinel target: no command can be formed *right now*.

    Returned (in the command position) when every candidate zone is
    blocked by in-flight work — e.g. all zones full but with outstanding
    append reservations that will be released by pending completions.
    The runner must wait a short simulated delay and ask again rather
    than retire the slot; at high iodepth, slots hitting a zone boundary
    would otherwise die and silently shrink the measured concurrency.
    """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<BACKOFF>"


#: The shared back-off sentinel instance.
BACKOFF = Backoff()


class ZoneWriteCursor:
    """Sequential write targeting across a set of zones.

    Hands out write-pointer-ordered (slba, nlb) slices, moving to the next
    zone when one fills. When every zone has been filled and
    ``reset_when_full`` is set, the cursor reports the zone that must be
    reset (host-managed GC); the runner issues the reset and retries.
    """

    def __init__(self, device, zones: Sequence[int], nlb: int,
                 reset_when_full: bool = True):
        if not zones:
            raise ValueError("need at least one target zone")
        if nlb <= 0:
            raise ValueError("nlb must be positive")
        self.device = device
        self.zone_ids = list(zones)
        self.nlb = nlb
        self.reset_when_full = reset_when_full
        self._zone_pos = 0
        self._next_lba: Optional[int] = None

    def _zone(self):
        return self.device.zones.zones[self.zone_ids[self._zone_pos]]

    def next_target(self) -> tuple[Optional[Command], Optional[int]]:
        """Returns (command, zone_to_reset). Exactly one is non-None,
        unless the cursor is exhausted (both None)."""
        for _ in range(2 * len(self.zone_ids) + 2):
            zone = self._zone()
            if _dead(zone):
                # Retired zone (fault injection): never write or reset it.
                self._zone_pos = (self._zone_pos + 1) % len(self.zone_ids)
                self._next_lba = None
                continue
            if self._next_lba is None:
                self._next_lba = zone.wp
            if self._next_lba + self.nlb <= zone.writable_end:
                slba = self._next_lba
                self._next_lba += self.nlb
                return make_command(Opcode.WRITE, slba, self.nlb), None
            # Zone exhausted: advance (resetting if allowed and needed).
            self._zone_pos = (self._zone_pos + 1) % len(self.zone_ids)
            self._next_lba = None
            nxt = self._zone()
            if _dead(nxt):
                continue
            if nxt.wp + self.nlb > nxt.writable_end:
                if self.reset_when_full:
                    return None, nxt.index
                continue
        return None, None


class ZoneAppendCursor:
    """Append targeting across a set of zones (device assigns addresses)."""

    def __init__(self, device, zones: Sequence[int], nlb: int,
                 reset_when_full: bool = True,
                 rng: Optional[np.random.Generator] = None):
        if not zones:
            raise ValueError("need at least one target zone")
        self.device = device
        self.zone_ids = list(zones)
        self.nlb = nlb
        self.reset_when_full = reset_when_full
        self._rng = rng
        self._zone_pos = 0
        #: Reserved-but-not-yet-completed LBAs per zone, so concurrent
        #: appends at high QD stop before overshooting the capacity.
        self._reserved: dict[int, int] = {z: 0 for z in self.zone_ids}

    def _pick_zone_pos(self) -> int:
        if self._rng is None:
            return self._zone_pos
        return int(self._rng.integers(0, len(self.zone_ids)))

    def next_target(self) -> tuple[Optional[Command], Optional[int]]:
        # NB: the iteration bound must stay exactly as in fault-free runs —
        # random mode draws from the RNG every iteration, so a wider bound
        # would shift the draw stream and break golden-run byte-identity.
        # Dead-zone skips burn iterations, but the runner re-polls after
        # BACKOFF, so progress only needs one live zone to be reachable.
        for _ in range(len(self.zone_ids) + 1):
            pos = self._pick_zone_pos()
            zone_id = self.zone_ids[pos]
            zone = self.device.zones.zones[zone_id]
            if _dead(zone):
                # Retired zone (fault injection): skip; appends and resets
                # against READ_ONLY/OFFLINE zones can never succeed.
                self._zone_pos = (self._zone_pos + 1) % len(self.zone_ids)
                continue
            projected = zone.wp + self._reserved[zone_id] + self.nlb
            if projected <= zone.writable_end:
                self._reserved[zone_id] += self.nlb
                return make_command(Opcode.APPEND, zone.zslba, self.nlb), None
            if self.reset_when_full and self._reserved[zone_id] == 0:
                return None, zone_id
            self._zone_pos = (self._zone_pos + 1) % len(self.zone_ids)
        if any(count > 0 for count in self._reserved.values()):
            # Every zone is full *including* reservations held by appends
            # still in flight. Those reservations will be released (and,
            # with reset_when_full, the zones recycled), so this is a
            # transient condition — signal back-off, not exhaustion.
            return BACKOFF, None
        return None, None

    def completed(self, command: Command) -> None:
        """Release the reservation once an append finishes."""
        zones = self.device.zones
        zone = zones.zone_containing(command.slba)
        if zone is not None and zone.index in self._reserved:
            self._reserved[zone.index] = max(0, self._reserved[zone.index] - command.nlb)

    def reset_done(self, zone_id: int) -> None:
        self._reserved[zone_id] = 0


class RandomReadPattern:
    """Uniform random reads over the written extent of a set of zones."""

    def __init__(self, device, zones: Sequence[int], nlb: int,
                 rng: np.random.Generator):
        if not zones:
            raise ValueError("need at least one target zone")
        self.device = device
        self.zone_ids = list(zones)
        self.nlb = nlb
        self._rng = rng

    def next_target(self) -> tuple[Optional[Command], Optional[int]]:
        zone_id = self.zone_ids[int(self._rng.integers(0, len(self.zone_ids)))]
        zone = self.device.zones.zones[zone_id]
        written = zone.occupancy_lbas
        if written < self.nlb:
            # Nothing to read yet in this zone; read from the start anyway
            # (deallocated reads are legal and cheap on ZNS).
            return make_command(Opcode.READ, zone.zslba, self.nlb), None
        slba = zone.zslba + int(self._rng.integers(0, written - self.nlb + 1))
        return make_command(Opcode.READ, slba, self.nlb), None


class RangePattern:
    """Sequential or random I/O over a flat LBA range (non-zoned)."""

    def __init__(self, opcode: Opcode, address_range: tuple[int, int], nlb: int,
                 random: bool, rng: np.random.Generator):
        start, end = address_range
        if not 0 <= start < end:
            raise ValueError(f"bad address range {address_range}")
        if end - start < nlb:
            raise ValueError("address range smaller than one request")
        self.opcode = opcode
        self.start, self.end = start, end
        self.nlb = nlb
        self.random = random
        self._rng = rng
        self._cursor = start

    def next_target(self) -> tuple[Optional[Command], Optional[int]]:
        if self.random:
            slots = (self.end - self.start) // self.nlb
            slba = self.start + int(self._rng.integers(0, slots)) * self.nlb
        else:
            if self._cursor + self.nlb > self.end:
                self._cursor = self.start
            slba = self._cursor
            self._cursor += self.nlb
        return make_command(self.opcode, slba, self.nlb), None
