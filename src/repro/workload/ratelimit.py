"""Byte-rate pacing — the fio ``rate=`` option used in §III-F.

A shared pacer: each request reserves its byte cost against a continuous
refill, and the runner sleeps until the reservation's start time. Over
any window longer than a few requests, throughput equals the configured
rate (if the device can sustain it).
"""

from __future__ import annotations

from ..sim.engine import NS_PER_S, Simulator

__all__ = ["RatePacer"]


class RatePacer:
    """Token-bucket pacing at a fixed bytes-per-second rate."""

    def __init__(self, sim: Simulator, rate_bps: float):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.sim = sim
        self.rate_bps = float(rate_bps)
        self._next_free_ns = 0

    def delay_for(self, nbytes: int) -> int:
        """Reserve ``nbytes`` and return how long the caller must wait."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        now = self.sim.now
        start = max(now, self._next_free_ns)
        self._next_free_ns = start + round(nbytes * NS_PER_S / self.rate_bps)
        return start - now
