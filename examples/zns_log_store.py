#!/usr/bin/env python
"""A log-structured key-value store on ZNS zones, with host-managed GC.

The paper's introduction motivates ZNS with log-based data management
systems (LSM key-value stores, log-structured file systems — §V cites
Purandare et al., ZenFS, TropoDB). This example builds a minimal such
system on the simulated ZN540 and shows the paper's recommendations in
action:

* values are **appended** to the active zone (Rec #1 trade-off: appends
  allow concurrent writers without host serialization — Obs #6),
* the store obeys the max-active-zones limit and finishes nothing
  (Rec #3: avoid finish; zones are either filling or reset whole),
* garbage collection is host-driven: the zone with the least live data
  is victimized, live values are relocated by re-appending, then the
  zone is **reset** — concurrently with foreground I/O, which resets do
  not disturb (Rec #5 / Obs #12).

Run: ``python examples/zns_log_store.py``
"""

from __future__ import annotations

import numpy as np

from repro.hostif import Command, Opcode, ZoneAction
from repro.sim import Simulator, ms, sec
from repro.stacks import SpdkStack
from repro.workload import LatencyStats
from repro.zns import ZnsDevice, zn540


class ZnsLogStore:
    """Append-only KV store: one active zone, whole-zone reclamation."""

    def __init__(self, device: ZnsDevice, stack: SpdkStack, data_zones: int = 6):
        if data_zones < 3:
            raise ValueError("need >= 3 zones (active + spare + victims)")
        self.device = device
        self.stack = stack
        self.sim = device.sim
        self.zone_ids = list(range(data_zones))
        self.active = 0
        #: One zone is always kept empty as the GC relocation target, so
        #: collection can never cascade (live data of one zone always
        #: fits an empty zone).
        self.spare = data_zones - 1
        #: key -> (zone, lba, nlb); the device stores the values.
        self.index: dict[str, tuple[int, int, int]] = {}
        #: zone -> live bytes (drives victim selection).
        self.live_lbas: dict[int, int] = {z: 0 for z in self.zone_ids}
        self.put_latency = LatencyStats()
        self.get_latency = LatencyStats()
        self.gc_runs = 0
        self.gc_moved_lbas = 0

    # -- public API --------------------------------------------------------
    def put(self, key: str, nbytes: int):
        """Append a value; yields until durable. Returns its address."""
        nlb = self.device.namespace.lbas(nbytes)
        completion = yield from self._append(nlb)
        self.put_latency.record(completion.latency_ns)
        old = self.index.get(key)
        if old is not None:
            self.live_lbas[old[0]] -= old[2]
        zone = self.device.zones.zone_containing(completion.assigned_lba)
        self.index[key] = (zone.index, completion.assigned_lba, nlb)
        self.live_lbas[zone.index] += nlb

    def get(self, key: str):
        """Read a value back; yields until complete."""
        zone, lba, nlb = self.index[key]
        completion = yield self.stack.submit(Command(Opcode.READ, slba=lba, nlb=nlb))
        assert completion.ok, completion.status
        self.get_latency.record(completion.latency_ns)
        return completion

    def delete(self, key: str) -> None:
        zone, _, nlb = self.index.pop(key)
        self.live_lbas[zone] -= nlb

    def utilization(self) -> float:
        cap = sum(self.device.zones.zones[z].cap_lbas for z in self.zone_ids)
        used = sum(self.device.zones.zones[z].occupancy_lbas for z in self.zone_ids)
        return used / cap

    # -- internals ------------------------------------------------------------
    def _append(self, nlb: int):
        while True:
            zone = self.device.zones.zones[self.zone_ids[self.active]]
            if zone.wp + nlb <= zone.writable_end:
                completion = yield self.stack.submit(
                    Command(Opcode.APPEND, slba=zone.zslba, nlb=nlb)
                )
                assert completion.ok, completion.status
                return completion
            yield from self._advance_active(nlb)

    def _advance_active(self, nlb: int):
        """Move to the next non-spare zone with room, or garbage collect."""
        for offset in range(1, len(self.zone_ids)):
            candidate = (self.active + offset) % len(self.zone_ids)
            if self.zone_ids[candidate] == self.spare:
                continue
            zone = self.device.zones.zones[self.zone_ids[candidate]]
            if zone.wp + nlb <= zone.writable_end:
                self.active = candidate
                return
        yield from self._collect()

    def _collect(self):
        """Host GC: move the emptiest zone's live values into the spare
        zone, reset the victim, and make it the new spare."""
        victim = min(
            (z for z in self.zone_ids if z != self.spare),
            key=lambda z: self.live_lbas[z],
        )
        target_zone = self.device.zones.zones[self.spare]
        self.gc_runs += 1
        live = [
            (key, addr) for key, addr in self.index.items() if addr[0] == victim
        ]
        for key, (_zone, lba, nlb) in live:
            read = yield self.stack.submit(Command(Opcode.READ, slba=lba, nlb=nlb))
            assert read.ok
            moved = yield self.stack.submit(
                Command(Opcode.APPEND, slba=target_zone.zslba, nlb=nlb)
            )
            assert moved.ok, moved.status
            self.index[key] = (target_zone.index, moved.assigned_lba, nlb)
            self.live_lbas[victim] -= nlb
            self.live_lbas[target_zone.index] += nlb
            self.gc_moved_lbas += nlb
        zslba = self.device.zones.zones[victim].zslba
        reset = yield self.stack.submit(
            Command(Opcode.ZONE_MGMT, slba=zslba, action=ZoneAction.RESET)
        )
        assert reset.ok
        # The filled spare becomes the active zone; the reclaimed victim
        # becomes the new spare.
        self.active = self.zone_ids.index(target_zone.index)
        self.spare = victim


def main() -> None:
    sim = Simulator()
    # Small zones keep the demo brisk; the API is identical at full size.
    device = ZnsDevice(sim, zn540(
        num_zones=8, zone_size_bytes=32 * 2**20, zone_cap_bytes=24 * 2**20))
    store = ZnsLogStore(device, SpdkStack(device), data_zones=6)

    rng = np.random.default_rng(42)
    value_bytes = 16 * 1024
    keys = [f"user:{i:05d}" for i in range(1200)]

    def workload():
        # Load phase: fill well past one zone so GC must run.
        for key in keys:
            yield from store.put(key, value_bytes)
        # Update phase: skewed overwrites create garbage.
        for _ in range(9500):
            key = keys[int(rng.zipf(1.3)) % len(keys)]
            yield from store.put(key, value_bytes)
        # Point reads.
        for _ in range(2000):
            yield from store.get(keys[int(rng.integers(0, len(keys)))])

    done = sim.process(workload())
    sim.run(until=done)

    print("ZNS log-structured KV store (simulated ZN540)")
    print(f"  simulated time     : {sim.now / sec(1):.2f} s")
    print(f"  puts               : {store.put_latency.count:,} "
          f"(mean {store.put_latency.mean_us:.1f} us, "
          f"p95 {store.put_latency.percentile_us(95):.1f} us)")
    print(f"  gets               : {store.get_latency.count:,} "
          f"(mean {store.get_latency.mean_us:.1f} us, "
          f"p95 {store.get_latency.percentile_us(95):.1f} us)")
    print(f"  live keys          : {len(store.index):,}")
    print(f"  zone GC runs       : {store.gc_runs} "
          f"(moved {store.gc_moved_lbas * 4 // 1024} MiB live data)")
    print(f"  space utilization  : {store.utilization() * 100:.0f}%")
    print(f"  device writes      : {device.counters.completed[Opcode.APPEND]:,} appends, "
          f"{device.counters.errors or 'no errors'}")


if __name__ == "__main__":
    main()
