#!/usr/bin/env python
"""Run a fast version of the paper's characterization sweep.

Reproduces (at reduced statistical scale — pass ``--full`` for the
benchmark-grade settings) the paper's core latency/transition
experiments, prints the figure tables, then evaluates the observations
and renders Table I with validation status.

Run: ``python examples/characterize_device.py [--full]``
"""

import argparse

from repro.core import ExperimentConfig, check_all, run_experiments, table1, table2
from repro.sim import ms

#: The cheap-but-complete subset (the interference experiments take
#: minutes; the benchmark harness covers those).
FAST_EXPERIMENTS = ["fig2a", "fig2b", "fig3", "fig4a", "fig4b", "obs9", "fig5a", "fig5b"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run every experiment at benchmark scale "
                             "(several minutes)")
    args = parser.parse_args()

    if args.full:
        config, ids = ExperimentConfig(), None
    else:
        config = ExperimentConfig(
            point_runtime_ns=ms(3), ramp_ns=ms(0.5), zones_per_level=5,
        )
        ids = FAST_EXPERIMENTS

    print(table2())
    print()
    results = run_experiments(ids, config, verbose=True)

    checks = check_all(results)
    print("observation checks:")
    for check in checks:
        print(f"  {check}")
    print()
    print(table1(checks))
    reproduced = sum(c.passed for c in checks)
    print(f"\n{reproduced}/{len(checks)} evaluated observations reproduced "
          "on the simulated ZN540")


if __name__ == "__main__":
    main()
