#!/usr/bin/env python
"""Open-loop trace replay: the same trace on different latency models.

Generates a mixed synthetic trace (Poisson arrivals of random reads over
pre-filled zones), saves/reloads it through the CSV format, and replays
it against the calibrated ZN540 and against the §IV emulator latency
models — showing how model choice changes the latencies a trace study
would report (the §IV argument, now on an arbitrary workload).

Run: ``python examples/trace_replay.py``
"""

from repro.hostif import Opcode
from repro.sim import ms
from repro.stacks import SpdkStack
from repro.workload import Trace, TraceReplayer, synthetic_trace
from repro.emulators import ALL_MODELS


def main() -> None:
    # Build the trace once against the reference device's geometry.
    reference = ALL_MODELS[-1]  # this-work
    _, device = reference.build()
    cap = device.zones.zones[0].cap_lbas
    trace = synthetic_trace(
        duration_ns=ms(20),
        iops=120_000,
        opcode=Opcode.READ,
        nlb=1,
        address_range=(0, cap),
        pattern="random",
        seed=7,
    )
    csv_text = trace.to_csv()
    print(f"trace: {len(trace):,} random 4 KiB reads over {ms(20) / 1e6:.0f} ms "
          f"({trace.offered_iops() / 1000:.0f} K offered IOPS), "
          f"{len(csv_text) / 1024:.0f} KiB as CSV\n")
    trace = Trace.from_csv(csv_text)  # round-trip, as a consumer would

    print(f"{'model':<10} {'mean':>9} {'p95':>9} {'p99':>9} {'late':>6}")
    for model in ALL_MODELS:
        sim, device = model.build()
        for z in (0, 1):
            device.force_fill(z, device.zones.zones[z].cap_lbas)
        replayer = TraceReplayer(SpdkStack(device), trace, max_outstanding=64)
        replayer.run()
        lat = replayer.latency
        print(f"{model.name:<10} {lat.mean_us:>7.1f}us {lat.percentile_us(95):>7.1f}us "
              f"{lat.percentile_us(99):>7.1f}us {replayer.late_submissions:>6}")
    print()
    print("FEMU completes at DRAM speed — a trace study on it would conclude")
    print("reads are free; the timing-model emulators land near the real")
    print("device because reads are the operation they model well (§IV).")


if __name__ == "__main__":
    main()
