#!/usr/bin/env python
"""§IV in action: probe the emulator latency models for fidelity.

Builds a device per emulator latency model (FEMU, NVMeVirt, ConfZNS, and
the calibrated reference), probes the observation-relevant quantities,
prints the raw quantities side by side, and renders the reproduction
matrix the paper's §IV argues in prose.

Run: ``python examples/emulator_fidelity.py``
"""

from repro.core import render_table
from repro.emulators import ALL_MODELS, run_fidelity_matrix


def main() -> None:
    matrix = run_fidelity_matrix()

    # Raw probed quantities per model.
    quantity_labels = [
        ("lat_w4", "write 4 KiB QD1 (us)"),
        ("lat_a4", "append 4 KiB QD1 (us)"),
        ("write_intra_qd8", "write intra QD8 (KIOPS)"),
        ("write_inter_8z", "write inter 8 zones (KIOPS)"),
        ("append_intra_qd4", "append intra QD4 (KIOPS)"),
        ("read_intra_qd64", "read intra QD64 (KIOPS)"),
        ("open_us", "zone open (us)"),
        ("reset_empty_ms", "reset empty zone (ms)"),
        ("reset_full_ms", "reset full zone (ms)"),
        ("finish_low_ms", "finish ~empty zone (ms)"),
        ("reset_loaded_p95_ms", "reset p95 under writes (ms)"),
    ]
    rows = []
    for key, label in quantity_labels:
        row = {"quantity": label}
        for model in ALL_MODELS:
            row[model.name] = matrix.meta[model.name][key]
        rows.append(row)
    print(render_table(
        ["quantity"] + [m.name for m in ALL_MODELS], rows,
        title="Probed quantities per emulator latency model",
    ))
    print()
    print(matrix.table())
    print()
    for model in ALL_MODELS:
        verdicts = matrix.meta["verdicts"][model.name]
        reproduced = sorted(obs for obs, ok in verdicts.items() if ok)
        print(f"{model.name:<10} ({model.description}): reproduces "
              f"{reproduced if reproduced else 'none'}")


if __name__ == "__main__":
    main()
