#!/usr/bin/env python
"""ZNS vs conventional NVMe under a write flood (Fig. 6, condensed).

Runs the paper's §III-F interference scenario on both simulated devices
— 4 threads of 128 KiB writes at QD8 plus a random reader — and draws
ASCII timelines of the write throughput, making the headline result
visible at a glance: host-managed reclamation (ZNS) is steady; FTL
garbage collection (conventional) swings between near-zero and the
device limit.

Run: ``python examples/gc_comparison.py`` (takes ~1 minute)
"""

from repro.core import ExperimentConfig
from repro.core.experiments.io_interference import _run_device
from repro.sim import ms

BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values, peak):
    cells = []
    for v in values:
        idx = min(len(BARS) - 1, int(v / peak * (len(BARS) - 1) + 0.5))
        cells.append(BARS[idx])
    return "".join(cells)


def main() -> None:
    config = ExperimentConfig(interference_runtime_ns=ms(1_500))
    print("running ZNS flood (appends + host resets)...")
    zns_write, zns_read = _run_device(config, "zns", with_reader=True)
    print("running conventional flood (random overwrites + FTL GC)...")
    conv_write, conv_read = _run_device(config, "conv", with_reader=True)

    peak = 1_200.0  # MiB/s, the device write limit
    for label, result in (("ZNS ", zns_write), ("conv", conv_write)):
        values = [v for _, v in result.timeseries.bandwidth_series()][1:-1]
        mean = sum(values) / len(values)
        print(f"\n{label} write throughput (0-{peak:.0f} MiB/s, 50 ms buckets):")
        print(f"  {sparkline(values, peak)}")
        print(f"  mean {mean:7.1f} MiB/s   min {min(values):7.1f}   max {max(values):7.1f}")

    print("\nconcurrent 4 KiB random reads (QD32):")
    for label, result in (("ZNS ", zns_read), ("conv", conv_read)):
        print(f"  {label}: {result.bandwidth_mibs:6.2f} MiB/s, "
              f"p95 latency {result.latency.percentile_ns(95) / 1e6:7.2f} ms")
    ratio = zns_read.bandwidth_mibs / max(conv_read.bandwidth_mibs, 1e-9)
    print(f"\nZNS sustains {ratio:.1f}x the conventional read throughput under "
          "the flood (paper Table I: ~3x), because its reclamation is "
          "host-scheduled resets instead of device-internal GC.")


if __name__ == "__main__":
    main()
