#!/usr/bin/env python
"""Infer a device's hidden zone-to-die mapping from the outside.

The paper's §V describes Bae et al.'s host-side tool that discovers
which zones share flash dies purely from inter-zone interference
measurements. This example runs our implementation against three
simulated devices whose (hidden) striping differs:

* the ZN540 (large zones striped over every die) — one big group,
* a half-width device — two die groups,
* a quarter-width device — four die groups,

and shows the tool recovering each mapping blind.

Run: ``python examples/zone_parallelism.py`` (takes ~1 minute)
"""

from repro.sim import Simulator
from repro.zns import ZnsDevice, infer_zone_groups
from repro.zns.profiles import zn540

MIB = 1024 * 1024


def build(stripe_width):
    profile = zn540(
        num_zones=8,
        zone_size_bytes=512 * MIB,
        zone_cap_bytes=384 * MIB,
        stripe_width=stripe_width,
        jitter_sigma=0.0,
        mgmt_jitter_sigma=0.0,
    )
    return ZnsDevice(Simulator(), profile)


def main() -> None:
    configs = [
        ("full-width striping (ZN540-like)", None),
        ("half-width striping (2 die groups)", 16),
        ("quarter-width striping (4 die groups)", 8),
    ]
    for label, width in configs:
        device = build(width)
        report = infer_zone_groups(device, zones=[0, 1, 2, 3])
        print(f"{label}:")
        print("  " + report.table().replace("\n", "\n  "))
        print(f"  inferred die groups : {report.group_count}")
        pairs = ", ".join(
            f"{a}-{b}:{'shared' if report.interferes(a, b) else 'disjoint'}"
            for (a, b) in report.pair_mibs
        )
        print(f"  pairwise verdicts   : {pairs}")
        print()
    print("On the large-zone ZN540 every zone interferes with every other —")
    print("the reason the paper prefers intra-zone parallelism (Rec #2): there")
    print("is no spare die-level parallelism to win by spreading across zones.")


if __name__ == "__main__":
    main()
