#!/usr/bin/env python
"""Quickstart: create a simulated ZNS SSD, issue I/O, manage zones.

Demonstrates the core public API:

* building a device from the calibrated ZN540 profile,
* issuing write / append / read through the SPDK-like stack,
* explicit zone management (open, close, finish, reset),
* reading the zone report,
* measuring latencies exactly as the paper does (§III-B).

Run: ``python examples/quickstart.py``
"""

from repro.hostif import Command, Opcode, ZoneAction
from repro.sim import Simulator
from repro.stacks import SpdkStack
from repro.zns import ZnsDevice, zn540


def sync(sim, event):
    """Run the simulation until one submitted command completes."""
    return sim.run(until=event)


def main() -> None:
    sim = Simulator()
    # A ZN540 with fewer zones (keeps the zone report short); every
    # latency characteristic is identical to the full device.
    device = ZnsDevice(sim, zn540(num_zones=8))
    stack = SpdkStack(device)
    ns = device.namespace

    print(f"device : {device.profile.name}")
    print(f"zones  : {device.zones.num_zones} x "
          f"{device.profile.zone_size_bytes // 2**20} MiB "
          f"(capacity {device.profile.zone_cap_bytes // 2**20} MiB), "
          f"max open/active {device.profile.max_open_zones}")
    print(f"format : {ns.lba_format} LBAs\n")

    # -- writes: host-addressed, strictly sequential within a zone -------
    nlb = ns.lbas(4096)
    for i in range(4):
        cpl = sync(sim, stack.submit(Command(Opcode.WRITE, slba=i * nlb, nlb=nlb)))
        print(f"write  lba={cpl.command.slba:<6} -> {cpl.status.value:<8} "
              f"{cpl.latency_ns / 1000:6.2f} us")

    # A non-sequential write violates the zone's write pointer:
    bad = sync(sim, stack.submit(Command(Opcode.WRITE, slba=100 * nlb, nlb=nlb)))
    print(f"write  lba={bad.command.slba:<6} -> {bad.status.value} (as expected)\n")

    # -- appends: device-addressed; safe to issue concurrently -----------
    zone1 = device.zones.zones[1]
    events = [stack.submit(Command(Opcode.APPEND, slba=zone1.zslba, nlb=nlb))
              for _ in range(4)]
    sim.run()
    for ev in events:
        cpl = ev.value
        print(f"append zone=1 -> assigned lba={cpl.assigned_lba:<8} "
              f"{cpl.latency_ns / 1000:6.2f} us")
    print()

    # -- reads ------------------------------------------------------------
    cpl = sync(sim, stack.submit(Command(Opcode.READ, slba=0, nlb=nlb)))
    print(f"read   lba=0 -> {cpl.latency_ns / 1000:.2f} us "
          "(NAND read + bus transfer)\n")

    # -- zone management ---------------------------------------------------
    for action in (ZoneAction.FINISH, ZoneAction.RESET):
        cpl = sync(sim, stack.submit(
            Command(Opcode.ZONE_MGMT, slba=zone1.zslba, action=action)))
        print(f"{action.value:<6} zone=1 -> {cpl.status.value:<8} "
              f"{cpl.latency_ns / 1e6:8.2f} ms")
    print()

    # -- zone report --------------------------------------------------------
    print("zone report:")
    for zone in device.report_zones():
        print(f"  zone {zone.index}: state={zone.state.value:<13} "
              f"wp={zone.occupancy_lbas}/{zone.cap_lbas} LBAs")


if __name__ == "__main__":
    main()
